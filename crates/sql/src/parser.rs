//! Recursive-descent parser for the supported fragment:
//!
//! ```text
//! select    := SELECT '*' FROM tables [WHERE condition (AND condition)*]
//!              [GROUP BY qualified] [ORDER BY qualified] EOF
//! tables    := table (',' table)*
//! table     := ident [[AS] ident]
//! condition := qualified cmp (qualified | number)
//! qualified := ident '.' ident
//! cmp       := '=' | '<' | '<=' | '>' | '>='
//! ```

use crate::ast::{
    Comparison, Condition, GroupByItem, OrderByItem, QualifiedColumn, SelectStatement, TableRef,
};
use crate::lexer::{Token, TokenKind};
use crate::SqlError;

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

/// Parse a token stream into a [`SelectStatement`].
pub fn parse(tokens: &[Token]) -> Result<SelectStatement, SqlError> {
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select()?;
    p.expect_eof()?;
    Ok(stmt)
}

impl Parser<'_> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, SqlError> {
        Err(SqlError::Parse {
            at: self.peek().at,
            message: message.into(),
        })
    }

    /// Consume an identifier, any case.
    fn ident(&mut self, what: &str) -> Result<String, SqlError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => self.error(format!("expected {what}, found {other:?}")),
        }
    }

    /// Consume a specific keyword (case-insensitive).
    fn keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            other => self.error(format!("expected `{kw}`, found {other:?}")),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_eof(&mut self) -> Result<(), SqlError> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            self.error("trailing input after statement")
        }
    }

    fn select(&mut self) -> Result<SelectStatement, SqlError> {
        self.keyword("SELECT")?;
        if self.peek().kind != TokenKind::Star {
            return self.error("only `SELECT *` is supported");
        }
        self.pos += 1;
        self.keyword("FROM")?;

        let mut from = vec![self.table_ref()?];
        while self.peek().kind == TokenKind::Comma {
            self.pos += 1;
            from.push(self.table_ref()?);
        }

        let mut conditions = Vec::new();
        if self.peek_keyword("WHERE") {
            self.pos += 1;
            conditions.push(self.condition()?);
            while self.peek_keyword("AND") {
                self.pos += 1;
                conditions.push(self.condition()?);
            }
        }

        let group_by = if self.peek_keyword("GROUP") {
            self.pos += 1;
            self.keyword("BY")?;
            let column = self.qualified()?;
            Some(GroupByItem { column })
        } else {
            None
        };

        let order_by = if self.peek_keyword("ORDER") {
            self.pos += 1;
            self.keyword("BY")?;
            let column = self.qualified()?;
            // Optional ASC (the only direction the optimizer models).
            if self.peek_keyword("ASC") {
                self.pos += 1;
            }
            Some(OrderByItem { column })
        } else {
            None
        };

        Ok(SelectStatement {
            from,
            conditions,
            group_by,
            order_by,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.ident("table name")?;
        if Self::is_reserved(&table) {
            return self.error(format!("`{table}` is a keyword, not a table name"));
        }
        // Optional [AS] alias — but stop before keywords.
        let alias = if self.peek_keyword("AS") {
            self.pos += 1;
            self.ident("alias")?
        } else if let TokenKind::Ident(s) = &self.peek().kind {
            if Self::is_reserved(s) {
                table.clone()
            } else {
                self.ident("alias")?
            }
        } else {
            table.clone()
        };
        Ok(TableRef { table, alias })
    }

    fn is_reserved(s: &str) -> bool {
        [
            "SELECT", "FROM", "WHERE", "AND", "GROUP", "ORDER", "BY", "AS", "ASC",
        ]
        .iter()
        .any(|k| s.eq_ignore_ascii_case(k))
    }

    fn qualified(&mut self) -> Result<QualifiedColumn, SqlError> {
        let qualifier = self.ident("table alias")?;
        if self.peek().kind != TokenKind::Dot {
            return self.error("expected `.` after qualifier (columns must be qualified)");
        }
        self.pos += 1;
        let column = self.ident("column name")?;
        Ok(QualifiedColumn { qualifier, column })
    }

    fn comparison(&mut self) -> Result<Comparison, SqlError> {
        let op = match self.peek().kind {
            TokenKind::Eq => Comparison::Eq,
            TokenKind::Lt => Comparison::Lt,
            TokenKind::Le => Comparison::Le,
            TokenKind::Gt => Comparison::Gt,
            TokenKind::Ge => Comparison::Ge,
            _ => return self.error("expected a comparison operator"),
        };
        self.pos += 1;
        Ok(op)
    }

    fn condition(&mut self) -> Result<Condition, SqlError> {
        let left = self.qualified()?;
        let op = self.comparison()?;
        match self.peek().kind.clone() {
            TokenKind::Number(value) => {
                self.pos += 1;
                Ok(Condition::Filter {
                    column: left,
                    op,
                    value,
                })
            }
            TokenKind::Ident(_) => {
                let right = self.qualified()?;
                if op != Comparison::Eq {
                    return self.error("only equi-joins between columns are supported");
                }
                Ok(Condition::Join { left, right })
            }
            other => {
                let _ = self.advance();
                self.error(format!(
                    "expected a column or integer after comparison, found {other:?}"
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse_str(sql: &str) -> Result<SelectStatement, SqlError> {
        parse(&tokenize(sql).unwrap())
    }

    #[test]
    fn minimal_select() {
        let s = parse_str("SELECT * FROM t").unwrap();
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].alias, "t");
        assert!(s.conditions.is_empty());
        assert!(s.order_by.is_none());
    }

    #[test]
    fn aliases_with_and_without_as() {
        let s = parse_str("select * from t1 a, t2 AS b, t3").unwrap();
        assert_eq!(s.from[0].alias, "a");
        assert_eq!(s.from[1].alias, "b");
        assert_eq!(s.from[2].alias, "t3");
    }

    #[test]
    fn joins_filters_and_order_by() {
        let s = parse_str(
            "SELECT * FROM t1 a, t2 b WHERE a.x = b.y AND a.z <= 10 AND b.w > 3 ORDER BY b.y ASC",
        )
        .unwrap();
        assert_eq!(s.conditions.len(), 3);
        assert!(matches!(s.conditions[0], Condition::Join { .. }));
        assert!(matches!(
            s.conditions[1],
            Condition::Filter {
                op: Comparison::Le,
                value: 10,
                ..
            }
        ));
        assert_eq!(s.order_by.as_ref().unwrap().column.column, "y");
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse_str("sElEcT * fRoM t1 WhErE t1.a = 5 oRdEr bY t1.a").is_ok());
        assert!(parse_str("select * from t1 gRoUp By t1.a").is_ok());
    }

    #[test]
    fn group_by_parses_before_order_by() {
        let s = parse_str("SELECT * FROM t1 a, t2 b WHERE a.x = b.y GROUP BY a.x ORDER BY b.y")
            .unwrap();
        assert_eq!(s.group_by.as_ref().unwrap().column.column, "x");
        assert_eq!(s.order_by.as_ref().unwrap().column.column, "y");
    }

    #[test]
    fn group_by_alone_parses() {
        let s = parse_str("SELECT * FROM t1 a GROUP BY a.x").unwrap();
        assert!(s.group_by.is_some());
        assert!(s.order_by.is_none());
    }

    #[test]
    fn group_by_after_order_by_is_rejected() {
        // The grammar fixes clause order: GROUP BY precedes ORDER BY.
        assert!(parse_str("SELECT * FROM t1 a ORDER BY a.x GROUP BY a.x").is_err());
    }

    #[test]
    fn group_is_reserved() {
        assert!(parse_str("SELECT * FROM group").is_err());
    }

    #[test]
    fn rejects_non_star_projection() {
        assert!(parse_str("SELECT a FROM t").is_err());
    }

    #[test]
    fn rejects_inequality_joins() {
        let err = parse_str("SELECT * FROM t1 a, t2 b WHERE a.x < b.y").unwrap_err();
        assert!(err.to_string().contains("equi-join"));
    }

    #[test]
    fn rejects_unqualified_columns() {
        assert!(parse_str("SELECT * FROM t WHERE x = 1").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_str("SELECT * FROM t WHERE t.x = 1 1").is_err());
    }

    #[test]
    fn rejects_keyword_as_table() {
        assert!(parse_str("SELECT * FROM where").is_err());
    }
}
