//! Rendering a bound [`Query`] back to SQL text.
//!
//! Used for debugging/EXPLAIN output and — more importantly — as the
//! inverse direction of the round-trip property tests: any query the
//! workload generator produces must survive
//! `render_sql → parse → bind` with its join graph intact.

use std::fmt::Write as _;

use sdp_catalog::Catalog;
use sdp_query::Query;

use crate::binder::column_name;

/// Render a query as a SQL string (aliases `t0`, `t1`, … by node).
pub fn render_sql(catalog: &Catalog, query: &Query) -> String {
    let graph = &query.graph;
    let mut sql = String::from("SELECT * FROM ");
    for node in 0..graph.len() {
        if node > 0 {
            sql.push_str(", ");
        }
        let name = catalog
            .relation(graph.relation(node))
            .map(|r| r.name.clone())
            .unwrap_or_else(|_| format!("R{}", graph.relation(node).0));
        let _ = write!(sql, "{name} t{node}");
    }

    let mut conjuncts: Vec<String> = Vec::new();
    for e in graph.edges() {
        conjuncts.push(format!(
            "t{}.{} = t{}.{}",
            e.left.node,
            column_name(catalog, graph.relation(e.left.node), e.left.col),
            e.right.node,
            column_name(catalog, graph.relation(e.right.node), e.right.col),
        ));
    }
    for f in graph.filters() {
        conjuncts.push(format!(
            "t{}.{} {} {}",
            f.column.node,
            column_name(catalog, graph.relation(f.column.node), f.column.col),
            f.op.symbol(),
            f.value
        ));
    }
    if !conjuncts.is_empty() {
        let _ = write!(sql, " WHERE {}", conjuncts.join(" AND "));
    }

    if let Some(ob) = query.order_by {
        let _ = write!(
            sql,
            " ORDER BY t{}.{}",
            ob.column.node,
            column_name(catalog, graph.relation(ob.column.node), ob.column.col)
        );
    }
    sql
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use sdp_catalog::Catalog;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn renders_readable_sql() {
        let catalog = Catalog::paper();
        let q = QueryGenerator::new(&catalog, Topology::Chain(3), 1).instance(0);
        let sql = render_sql(&catalog, &q);
        assert!(sql.starts_with("SELECT * FROM "));
        assert!(sql.contains(" WHERE "));
        assert_eq!(sql.matches(" = ").count(), 2);
    }

    #[test]
    fn round_trip_preserves_the_join_graph() {
        let catalog = Catalog::paper();
        for topo in [
            Topology::Chain(5),
            Topology::Star(6),
            Topology::star_chain(8),
            Topology::Cycle(5),
        ] {
            for seed in 0..3 {
                let original = QueryGenerator::new(&catalog, topo, seed)
                    .with_filter_probability(0.5)
                    .ordered_instance(0);
                let sql = render_sql(&catalog, &original);
                let parsed = parse_query(&catalog, &sql)
                    .unwrap_or_else(|e| panic!("{topo} seed {seed}: {e}\n{sql}"));
                assert_eq!(parsed.graph.relations(), original.graph.relations());
                assert_eq!(parsed.graph.edges(), original.graph.edges());
                assert_eq!(parsed.graph.filters(), original.graph.filters());
                assert_eq!(parsed.order_by, original.order_by);
            }
        }
    }
}
