//! Rendering a bound [`Query`] back to SQL text.
//!
//! Used for debugging/EXPLAIN output and — more importantly — as the
//! inverse direction of the round-trip property tests: any query the
//! workload generator produces must survive
//! `render_sql → parse → bind` with its join graph intact.

use std::fmt::Write as _;

use sdp_catalog::Catalog;
use sdp_query::Query;

use crate::ast::{Comparison, Condition, SelectStatement};
use crate::binder::column_name;

/// Render a query as a SQL string (aliases `t0`, `t1`, … by node).
pub fn render_sql(catalog: &Catalog, query: &Query) -> String {
    let graph = &query.graph;
    let mut sql = String::from("SELECT * FROM ");
    for node in 0..graph.len() {
        if node > 0 {
            sql.push_str(", ");
        }
        let name = catalog
            .relation(graph.relation(node))
            .map(|r| r.name.clone())
            .unwrap_or_else(|_| format!("R{}", graph.relation(node).0));
        let _ = write!(sql, "{name} t{node}");
    }

    let mut conjuncts: Vec<String> = Vec::new();
    for e in graph.edges() {
        conjuncts.push(format!(
            "t{}.{} = t{}.{}",
            e.left.node,
            column_name(catalog, graph.relation(e.left.node), e.left.col),
            e.right.node,
            column_name(catalog, graph.relation(e.right.node), e.right.col),
        ));
    }
    for f in graph.filters() {
        conjuncts.push(format!(
            "t{}.{} {} {}",
            f.column.node,
            column_name(catalog, graph.relation(f.column.node), f.column.col),
            f.op.symbol(),
            f.value
        ));
    }
    if !conjuncts.is_empty() {
        let _ = write!(sql, " WHERE {}", conjuncts.join(" AND "));
    }

    if let Some(gb) = query.group_by {
        let _ = write!(
            sql,
            " GROUP BY t{}.{}",
            gb.column.node,
            column_name(catalog, graph.relation(gb.column.node), gb.column.col)
        );
    }
    if let Some(ob) = query.order_by {
        let _ = write!(
            sql,
            " ORDER BY t{}.{}",
            ob.column.node,
            column_name(catalog, graph.relation(ob.column.node), ob.column.col)
        );
    }
    sql
}

/// Render a parsed [`SelectStatement`] back to SQL text, catalog-free.
///
/// The counterpart of [`crate::parse`]: for any statement in the
/// supported fragment, `parse(render_statement(stmt)) == stmt` (the
/// renderer always prints explicit aliases, which the parser defaults
/// anyway). The service layer uses this to guarantee that a text-keyed
/// request and its re-rendered form bind — and therefore fingerprint —
/// identically.
pub fn render_statement(stmt: &SelectStatement) -> String {
    let mut sql = String::from("SELECT * FROM ");
    for (i, t) in stmt.from.iter().enumerate() {
        if i > 0 {
            sql.push_str(", ");
        }
        let _ = write!(sql, "{} {}", t.table, t.alias);
    }
    let conjuncts: Vec<String> = stmt
        .conditions
        .iter()
        .map(|c| match c {
            Condition::Join { left, right } => format!(
                "{}.{} = {}.{}",
                left.qualifier, left.column, right.qualifier, right.column
            ),
            Condition::Filter { column, op, value } => {
                let sym = match op {
                    Comparison::Eq => "=",
                    Comparison::Lt => "<",
                    Comparison::Le => "<=",
                    Comparison::Gt => ">",
                    Comparison::Ge => ">=",
                };
                format!("{}.{} {sym} {value}", column.qualifier, column.column)
            }
        })
        .collect();
    if !conjuncts.is_empty() {
        let _ = write!(sql, " WHERE {}", conjuncts.join(" AND "));
    }
    if let Some(gb) = &stmt.group_by {
        let _ = write!(
            sql,
            " GROUP BY {}.{}",
            gb.column.qualifier, gb.column.column
        );
    }
    if let Some(ob) = &stmt.order_by {
        let _ = write!(
            sql,
            " ORDER BY {}.{}",
            ob.column.qualifier, ob.column.column
        );
    }
    sql
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use sdp_catalog::Catalog;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn renders_readable_sql() {
        let catalog = Catalog::paper();
        let q = QueryGenerator::new(&catalog, Topology::Chain(3), 1).instance(0);
        let sql = render_sql(&catalog, &q);
        assert!(sql.starts_with("SELECT * FROM "));
        assert!(sql.contains(" WHERE "));
        assert_eq!(sql.matches(" = ").count(), 2);
    }

    #[test]
    fn ast_round_trip_is_exact_for_generator_shapes() {
        // parse → render_statement → parse must reproduce the AST
        // exactly, so a request keyed by SQL text and the same request
        // re-rendered from its AST bind (and fingerprint) identically.
        let catalog = Catalog::paper();
        for topo in [
            Topology::Chain(4),
            Topology::Star(7),
            Topology::star_chain(9),
            Topology::Cycle(6),
            Topology::Clique(4),
        ] {
            for seed in 0..3 {
                let gen = QueryGenerator::new(&catalog, topo, seed).with_filter_probability(0.5);
                for q in [
                    gen.instance(0),
                    gen.ordered_instance(1),
                    gen.grouped_instance(2),
                ] {
                    let sql = render_sql(&catalog, &q);
                    let tokens = crate::tokenize(&sql).unwrap();
                    let stmt = crate::parse(&tokens)
                        .unwrap_or_else(|e| panic!("{topo} seed {seed}: {e}\n{sql}"));
                    let rendered = render_statement(&stmt);
                    let tokens2 = crate::tokenize(&rendered).unwrap();
                    let stmt2 = crate::parse(&tokens2)
                        .unwrap_or_else(|e| panic!("{topo} seed {seed}: {e}\n{rendered}"));
                    assert_eq!(stmt, stmt2, "{topo} seed {seed}\n{sql}\n{rendered}");
                }
            }
        }

        // And a hand-written statement exercising every operator and
        // defaulted aliases.
        let sql = "select * from R1, R2 b, R3 c \
                   where R1.c0 = b.c1 and b.c2 = c.c3 \
                   and R1.c4 < 10 and b.c5 <= 20 and c.c6 > 30 and c.c0 >= 40 and R1.c1 = 5 \
                   group by c.c3 order by b.c1";
        let stmt = crate::parse(&crate::tokenize(sql).unwrap()).unwrap();
        assert!(stmt.group_by.is_some() && stmt.order_by.is_some());
        let stmt2 = crate::parse(&crate::tokenize(&render_statement(&stmt)).unwrap()).unwrap();
        assert_eq!(stmt, stmt2);
    }

    #[test]
    fn round_trip_preserves_the_join_graph() {
        let catalog = Catalog::paper();
        for topo in [
            Topology::Chain(5),
            Topology::Star(6),
            Topology::star_chain(8),
            Topology::Cycle(5),
        ] {
            for seed in 0..3 {
                let gen = QueryGenerator::new(&catalog, topo, seed).with_filter_probability(0.5);
                for original in [gen.ordered_instance(0), gen.grouped_instance(0)] {
                    let sql = render_sql(&catalog, &original);
                    let parsed = parse_query(&catalog, &sql)
                        .unwrap_or_else(|e| panic!("{topo} seed {seed}: {e}\n{sql}"));
                    assert_eq!(parsed.graph.relations(), original.graph.relations());
                    assert_eq!(parsed.graph.edges(), original.graph.edges());
                    assert_eq!(parsed.graph.filters(), original.graph.filters());
                    assert_eq!(parsed.order_by, original.order_by);
                    assert_eq!(parsed.group_by, original.group_by);
                }
            }
        }
    }
}
