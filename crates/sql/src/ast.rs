//! Abstract syntax for the supported SQL fragment.

/// `table.column` (via alias or table name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualifiedColumn {
    /// Table alias or name.
    pub qualifier: String,
    /// Column name.
    pub column: String,
}

/// A `FROM`-list entry: a table with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Catalog table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: String,
}

/// A comparison operator in a `WHERE` condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One conjunct of the `WHERE` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// Equi-join `a.x = b.y` (distinct qualifiers).
    Join {
        /// Left column.
        left: QualifiedColumn,
        /// Right column.
        right: QualifiedColumn,
    },
    /// Constant comparison `a.x ⊕ 42`.
    Filter {
        /// Filtered column.
        column: QualifiedColumn,
        /// Operator.
        op: Comparison,
        /// Constant operand.
        value: i64,
    },
}

/// `ORDER BY a.x`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderByItem {
    /// Ordering column.
    pub column: QualifiedColumn,
}

/// `GROUP BY a.x`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupByItem {
    /// Grouping column.
    pub column: QualifiedColumn,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectStatement {
    /// `FROM` list, in order.
    pub from: Vec<TableRef>,
    /// `WHERE` conjuncts (empty when absent).
    pub conditions: Vec<Condition>,
    /// Optional `GROUP BY`.
    pub group_by: Option<GroupByItem>,
    /// Optional `ORDER BY`.
    pub order_by: Option<OrderByItem>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_types_are_value_types() {
        let c = Condition::Filter {
            column: QualifiedColumn {
                qualifier: "a".into(),
                column: "c0".into(),
            },
            op: Comparison::Le,
            value: 9,
        };
        assert_eq!(c.clone(), c);
    }
}
