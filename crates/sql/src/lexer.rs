//! Tokenizer for the supported SQL fragment.

use crate::SqlError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Keyword or identifier (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Integer literal.
    Number(i64),
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input (always the final token).
    Eof,
}

/// A token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub at: usize,
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    at: i,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    at: i,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    at: i,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    at: i,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        at: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        at: i,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        at: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        at: i,
                    });
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let value = text.parse::<i64>().map_err(|_| SqlError::Lex {
                    at: start,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    at: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    at: start,
                });
            }
            other => {
                return Err(SqlError::Lex {
                    at: i,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        at: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_the_full_vocabulary() {
        let ks = kinds("SELECT * FROM r1 a WHERE a.c0 <= 42, >= < > =");
        assert!(ks.contains(&TokenKind::Star));
        assert!(ks.contains(&TokenKind::Comma));
        assert!(ks.contains(&TokenKind::Dot));
        assert!(ks.contains(&TokenKind::Le));
        assert!(ks.contains(&TokenKind::Ge));
        assert!(ks.contains(&TokenKind::Lt));
        assert!(ks.contains(&TokenKind::Gt));
        assert!(ks.contains(&TokenKind::Eq));
        assert!(ks.contains(&TokenKind::Number(42)));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn identifiers_keep_case_and_underscores() {
        let ks = kinds("My_Table");
        assert_eq!(ks[0], TokenKind::Ident("My_Table".into()));
    }

    #[test]
    fn offsets_point_at_tokens() {
        let ts = tokenize("ab  cd").unwrap();
        assert_eq!(ts[0].at, 0);
        assert_eq!(ts[1].at, 4);
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = tokenize("a ; b").unwrap_err();
        assert!(matches!(err, SqlError::Lex { at: 2, .. }));
    }

    #[test]
    fn rejects_overflowing_numbers() {
        let err = tokenize("99999999999999999999999999").unwrap_err();
        assert!(matches!(err, SqlError::Lex { .. }));
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }
}
