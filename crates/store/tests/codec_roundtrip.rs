//! Property tests for the plan codec (ISSUE 7, satellite 3).
//!
//! Random governed plans — star / chain / clique topologies, every
//! ladder rung, both exhaustive enumerators — must survive
//! `decode(encode(p))` bit-identically: same structural digest, same
//! cost and row *bits*, same rung and enumerator tags, same strategy
//! identity. Any drift here would poison the warm-restart path, which
//! trusts decoded records enough to hand them straight to the plan
//! cache.

use std::sync::Arc;

use proptest::prelude::*;
use sdp_catalog::Catalog;
use sdp_core::governor::Rung;
use sdp_core::sdp::SdpConfig;
use sdp_core::{Algorithm, EnumeratorKind, Optimizer};
use sdp_query::{QueryGenerator, Topology};
use sdp_store::codec::{decode_plan, encode_plan};
use sdp_store::PlanRecord;

/// The rung under test and the algorithm that produces plans for it.
fn rung_algorithm(rung: Rung) -> Algorithm {
    match rung {
        Rung::Dp => Algorithm::Dp,
        Rung::Sdp => Algorithm::Sdp(SdpConfig::paper()),
        Rung::Idp => Algorithm::Idp { k: 4 },
        Rung::Goo => Algorithm::Goo,
    }
}

fn topology(shape: u8, n: usize) -> Topology {
    match shape % 3 {
        0 => Topology::Star(n),
        1 => Topology::Chain(n),
        _ => Topology::Clique(n),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// decode(encode(p)) is bit-identical for costing and explain
    /// across topologies, rungs and enumerators.
    #[test]
    fn plan_codec_round_trips_bit_identically(
        shape in 0u8..3,
        n in 4usize..9,
        seed in 0u64..1_000,
        k in 0u64..50,
        rung_idx in 0usize..4,
        enumerator_idx in 0usize..2,
        epoch in 0u64..u64::MAX,
        fp_hi in any::<u64>(),
        fp_lo in any::<u64>(),
    ) {
        let rung = sdp_core::governor::LADDER[rung_idx];
        let enumerator = [EnumeratorKind::LevelScan, EnumeratorKind::Dpccp][enumerator_idx];
        let algorithm = rung_algorithm(rung);

        let catalog = Catalog::paper();
        let gen = QueryGenerator::new(&catalog, topology(shape, n), seed);
        let query = gen.instance(k);
        let optimizer = Optimizer::new(&catalog).with_enumerator(enumerator);
        let plan = optimizer
            .optimize(&query, algorithm)
            .expect("generated queries are connected");

        let record = PlanRecord {
            fingerprint: (u128::from(fp_hi) << 64) | u128::from(fp_lo),
            stats_epoch: epoch,
            rung: Some(rung),
            enumerator,
            algo_repr: format!("{algorithm:?}"),
            strategy: algorithm.label(),
            degradations: rung_idx as u64,
            cost: plan.cost,
            rows: plan.rows,
            root: Arc::clone(&plan.root),
        };

        let payload = encode_plan(&record);
        let decoded = decode_plan(&payload).expect("fresh payload decodes");

        // Identity of the key tuple.
        prop_assert_eq!(decoded.fingerprint, record.fingerprint);
        prop_assert_eq!(decoded.stats_epoch, record.stats_epoch);
        prop_assert_eq!(decoded.rung, record.rung);
        prop_assert_eq!(decoded.enumerator, record.enumerator);
        prop_assert_eq!(&decoded.algo_repr, &record.algo_repr);
        prop_assert_eq!(&decoded.strategy, &record.strategy);
        prop_assert_eq!(decoded.degradations, record.degradations);

        // Bit-identical costing: compare f64 *bits*, not values.
        prop_assert_eq!(decoded.cost.to_bits(), record.cost.to_bits());
        prop_assert_eq!(decoded.rows.to_bits(), record.rows.to_bits());
        prop_assert_eq!(decoded.root.cost.to_bits(), record.root.cost.to_bits());
        prop_assert_eq!(decoded.root.rows.to_bits(), record.root.rows.to_bits());

        // Bit-identical structure: the WL-style digest hashes the
        // whole operator tree (ops, join methods, relation sets,
        // orderings), so equality here is tree equality.
        prop_assert_eq!(
            decoded.root.structural_digest(),
            record.root.structural_digest()
        );

        // And the codec is deterministic: re-encoding the decoded
        // record reproduces the original byte string.
        prop_assert_eq!(encode_plan(&decoded), payload);
    }

    /// Flipping any single payload byte never yields a silently wrong
    /// record: decode either fails or reproduces the original bytes.
    #[test]
    fn corrupted_payloads_never_decode_silently_wrong(
        seed in 0u64..200,
        pos in any::<usize>(),
        xor in any::<u8>(),
    ) {
        let catalog = Catalog::paper();
        let gen = QueryGenerator::new(&catalog, Topology::Star(6), seed);
        let query = gen.instance(seed);
        let optimizer = Optimizer::new(&catalog);
        let plan = optimizer
            .optimize(&query, Algorithm::Goo)
            .expect("star queries are connected");
        let record = PlanRecord {
            fingerprint: seed as u128,
            stats_epoch: 3,
            rung: Some(Rung::Goo),
            enumerator: EnumeratorKind::LevelScan,
            algo_repr: "Goo".into(),
            strategy: "GOO".into(),
            degradations: 0,
            cost: plan.cost,
            rows: plan.rows,
            root: Arc::clone(&plan.root),
        };
        let mut payload = encode_plan(&record);
        let idx = pos % payload.len();
        let bit = xor | 1; // guarantee a real change
        payload[idx] ^= bit;

        // Rejecting loudly is the desired outcome; a decode that
        // still succeeds must have lost nothing — re-encoding must
        // reproduce the mutated bytes exactly.
        if let Ok(decoded) = decode_plan(&payload) {
            prop_assert_eq!(encode_plan(&decoded), payload);
        }
    }
}
