//! Crash-safety integration tests for the persistent tier (ISSUE 7,
//! satellite 3): a torn tail — the half-written record a crash leaves
//! behind — must cost exactly the torn record, never the segment.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sdp_catalog::Catalog;
use sdp_core::governor::Rung;
use sdp_core::{Algorithm, EnumeratorKind, Optimizer};
use sdp_metrics::StoreCounters;
use sdp_query::{QueryGenerator, Topology};
use sdp_store::{PlanRecord, PlanStore, StoreOptions};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sdp-store-recovery-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A real optimized plan, so recovery exercises the full codec.
fn record(k: u64, epoch: u64) -> PlanRecord {
    let catalog = Catalog::paper();
    let gen = QueryGenerator::new(&catalog, Topology::Chain(5), 7);
    let query = gen.instance(k);
    let plan = Optimizer::new(&catalog)
        .optimize(&query, Algorithm::Goo)
        .unwrap();
    PlanRecord {
        fingerprint: u128::from(k) << 64 | 0xfeed,
        stats_epoch: epoch,
        rung: Some(Rung::Goo),
        enumerator: EnumeratorKind::LevelScan,
        algo_repr: "Goo".into(),
        strategy: "GOO".into(),
        degradations: 0,
        cost: plan.cost,
        rows: plan.rows,
        root: plan.root,
    }
}

fn open(
    dir: &Path,
    epoch: u64,
) -> (
    PlanStore,
    Vec<PlanRecord>,
    sdp_store::OpenStats,
    Arc<StoreCounters>,
) {
    let counters = Arc::new(StoreCounters::default());
    let (store, warm, stats) =
        PlanStore::open(dir, epoch, StoreOptions::default(), Arc::clone(&counters)).unwrap();
    (store, warm, stats, counters)
}

#[test]
fn torn_tail_is_truncated_and_intact_records_survive() {
    let dir = temp_dir("torn");
    {
        let (mut store, _, _, _) = open(&dir, 1);
        for k in 0..4 {
            store.append(&record(k, 1)).unwrap();
        }
    }

    // Simulate a crash mid-write: append half a frame to the active
    // segment — a plausible length prefix with no payload behind it.
    let seg = dir.join("seg-000000.log");
    let before = std::fs::metadata(&seg).unwrap().len();
    let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
    f.write_all(&64u32.to_le_bytes()).unwrap();
    f.write_all(&0xdead_beefu32.to_le_bytes()).unwrap();
    f.write_all(&[0xab; 17]).unwrap(); // 17 of the promised 64 bytes
    f.sync_all().unwrap();
    drop(f);
    assert!(std::fs::metadata(&seg).unwrap().len() > before);

    let (store, warm, stats, counters) = open(&dir, 1);
    assert_eq!(warm.len(), 4, "all intact records recovered");
    assert!(stats.recovery.truncated, "one torn tail cut");
    assert_eq!(stats.undecodable, 0);
    assert_eq!(store.live_len(), 4);
    assert_eq!(counters.snapshot().torn_truncations, 1);
    assert_eq!(
        std::fs::metadata(&seg).unwrap().len(),
        before,
        "the file was physically truncated back to the last intact frame"
    );

    // Recovered fingerprints are exactly the ones written.
    let mut fps: Vec<u128> = warm.iter().map(|r| r.fingerprint).collect();
    fps.sort_unstable();
    let expect: Vec<u128> = (0..4u64).map(|k| u128::from(k) << 64 | 0xfeed).collect();
    assert_eq!(fps, expect);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_stays_writable_after_torn_tail_recovery() {
    let dir = temp_dir("rewrite");
    {
        let (mut store, _, _, _) = open(&dir, 9);
        store.append(&record(0, 9)).unwrap();
        store.append(&record(1, 9)).unwrap();
    }
    // Tear the tail with garbage that can't even frame.
    let seg = dir.join("seg-000000.log");
    let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
    f.write_all(&[0xff; 7]).unwrap();
    drop(f);

    // Reopen, write more, reopen again: nothing written after
    // recovery may be lost, and no tear may be reported twice.
    {
        let (mut store, warm, stats, _) = open(&dir, 9);
        assert_eq!(warm.len(), 2);
        assert!(stats.recovery.truncated);
        store.append(&record(2, 9)).unwrap();
    }
    let (_, warm, stats, _) = open(&dir, 9);
    assert_eq!(warm.len(), 3, "post-recovery append survived");
    assert!(
        !stats.recovery.truncated,
        "truncation is physical, so the second open sees a clean log"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_payload_with_valid_frame_is_skipped_not_fatal() {
    let dir = temp_dir("corrupt");
    {
        let (mut store, _, _, _) = open(&dir, 2);
        store.append(&record(0, 2)).unwrap();
        store.append(&record(1, 2)).unwrap();
    }
    // Append a frame whose CRC is valid but whose payload claims an
    // unknown codec version: replay must skip and count it.
    let seg = dir.join("seg-000000.log");
    let payload = [200u8, 1, 2, 3]; // version 200 is from the future
    let crc = sdp_store::crc32(&payload);
    let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
    f.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
    f.write_all(&crc.to_le_bytes()).unwrap();
    f.write_all(&payload).unwrap();
    drop(f);

    let (store, warm, stats, _) = open(&dir, 2);
    assert_eq!(warm.len(), 2, "real records unaffected");
    assert_eq!(stats.undecodable, 1, "future-version record skipped");
    assert!(!stats.recovery.truncated);
    assert_eq!(store.live_len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}
