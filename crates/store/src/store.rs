//! The write-behind plan segment store.
//!
//! A store directory holds numbered segments `seg-NNNNNN.log` (kind-1
//! framed logs of encoded [`PlanRecord`]s). Appends go to the
//! highest-numbered segment; when it crosses the size threshold the
//! store *rotates* to a fresh segment, and once enough sealed segments
//! pile up it *compacts*: the live view (latest record per key at the
//! current stats epoch) is rewritten into one new segment and every
//! older file is deleted. A crash anywhere in that sequence is safe —
//! replay is latest-wins in `(segment, offset)` order, so duplicate
//! records left by an interrupted compaction dedup to the same view,
//! and a torn tail in any segment truncates to the last intact frame.
//!
//! Epoch discipline: records are stamped with the stats epoch they
//! were optimized under. On open, records from other epochs are
//! dropped (counted as `stale_dropped`) — a plan costed against old
//! statistics is not merely suboptimal, its cached cost is a lie.
//! Stale records also don't survive the next compaction, so an epoch
//! bump physically garbage-collects the old generation over time.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sdp_core::EnumeratorKind;
use sdp_metrics::StoreCounters;

use crate::codec::{decode_plan, encode_plan, PlanRecord};
use crate::log::{FramedLog, RecoveryStats};
use crate::StoreError;

/// Log-kind tag for plan segments.
pub const PLAN_LOG_KIND: u32 = 1;

/// Identity of a persisted plan: the same triple the service folds
/// into its in-memory cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RecordKey {
    /// WL fingerprint of the query.
    pub fingerprint: u128,
    /// `Debug` rendering of the requested strategy.
    pub algo_repr: String,
    /// Pair-enumeration strategy in effect.
    pub enumerator: EnumeratorKind,
}

impl RecordKey {
    /// The key under which `record` is stored.
    pub fn of(record: &PlanRecord) -> Self {
        RecordKey {
            fingerprint: record.fingerprint,
            algo_repr: record.algo_repr.clone(),
            enumerator: record.enumerator,
        }
    }
}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Rotate the active segment once it exceeds this many bytes.
    pub max_segment_bytes: u64,
    /// Compact once this many sealed segments have accumulated.
    pub compact_after_segments: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            max_segment_bytes: 4 << 20,
            compact_after_segments: 4,
        }
    }
}

/// What opening a store directory found.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenStats {
    /// Per-file recovery outcomes, merged.
    pub recovery: RecoveryStats,
    /// Records dropped because their stats epoch is not current.
    pub stale_dropped: u64,
    /// Records whose payload frame-checked but failed to decode
    /// (version skew from an older/newer build); skipped, not fatal.
    pub undecodable: u64,
    /// Live records handed back for the warm fill.
    pub live: u64,
}

/// The plan segment store, positioned for appends.
///
/// Not internally synchronized: the intended owner is a single
/// write-behind thread (plus the startup replay before that thread
/// exists).
#[derive(Debug)]
pub struct PlanStore {
    dir: PathBuf,
    epoch: u64,
    options: StoreOptions,
    counters: Arc<StoreCounters>,
    active: FramedLog,
    active_index: u64,
    sealed: Vec<(u64, PathBuf)>,
    /// Latest encoded payload per key at the current epoch — the
    /// compaction source. Payload bytes, not decoded trees: compaction
    /// must not re-encode (bit-stability) and plan trees are the
    /// expensive part to keep around twice.
    live: HashMap<RecordKey, Vec<u8>>,
    #[cfg(feature = "testkit")]
    faults: Option<sdp_testkit::FaultPlan>,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:06}.log"))
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut segments = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(stem) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".log"))
        {
            if let Ok(index) = stem.parse::<u64>() {
                segments.push((index, entry.path()));
            }
        }
    }
    segments.sort_by_key(|(index, _)| *index);
    Ok(segments)
}

impl PlanStore {
    /// Open (creating if needed) the store under `dir`, replay every
    /// segment, and return the store plus the live records — latest
    /// per key, current epoch only — for the warm fill.
    ///
    /// Counter effects: `torn_truncations` and `stale_dropped` are
    /// recorded here; `warm_fills` / `warm_hits` belong to the cache
    /// layer that consumes the returned records.
    pub fn open(
        dir: &Path,
        epoch: u64,
        options: StoreOptions,
        counters: Arc<StoreCounters>,
    ) -> Result<(Self, Vec<PlanRecord>, OpenStats), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        let mut stats = OpenStats::default();
        let mut live_payloads: HashMap<RecordKey, Vec<u8>> = HashMap::new();
        // Insertion order of keys, so the warm fill is deterministic
        // (HashMap iteration order is not).
        let mut key_order: Vec<RecordKey> = Vec::new();

        let segments = list_segments(dir)?;
        let mut last_index = 0u64;
        for (index, path) in &segments {
            last_index = *index;
            let (_log, payloads, recovery) = FramedLog::open(path, PLAN_LOG_KIND)?;
            if recovery.truncated {
                counters.record_torn_truncation();
            }
            stats.recovery.merge(recovery);
            for payload in payloads {
                let record = match decode_plan(&payload) {
                    Ok(record) => record,
                    Err(StoreError::Codec(_)) => {
                        stats.undecodable += 1;
                        continue;
                    }
                    Err(e) => return Err(e),
                };
                let key = RecordKey::of(&record);
                if record.stats_epoch != epoch {
                    stats.stale_dropped += 1;
                    counters.record_stale_dropped();
                    // A stale record shadows an older live one for the
                    // same key: the plan was re-optimized under a
                    // different epoch, so neither version is current.
                    if live_payloads.remove(&key).is_some() {
                        key_order.retain(|k| k != &key);
                    }
                    continue;
                }
                if live_payloads.insert(key.clone(), payload).is_none() {
                    key_order.push(key);
                }
            }
        }

        // Append to the highest existing segment (recovery left it
        // clean) or start segment 0.
        let active_index = if segments.is_empty() { 0 } else { last_index };
        let active_path = segment_path(dir, active_index);
        let (active, _, _) = FramedLog::open(&active_path, PLAN_LOG_KIND)?;
        let sealed = segments
            .into_iter()
            .filter(|(index, _)| *index != active_index)
            .collect();

        let mut records = Vec::with_capacity(key_order.len());
        for key in &key_order {
            let payload = &live_payloads[key];
            // Live payloads decoded once already; decoding again keeps
            // `live` as bytes without cloning trees around.
            records.push(decode_plan(payload)?);
        }
        stats.live = records.len() as u64;

        Ok((
            PlanStore {
                dir: dir.to_path_buf(),
                epoch,
                options,
                counters,
                active,
                active_index,
                sealed,
                live: live_payloads,
                #[cfg(feature = "testkit")]
                faults: None,
            },
            records,
            stats,
        ))
    }

    /// Arm deterministic crash-point injection: the process aborts
    /// (leaving whatever tail the OS got) once the fault plan's
    /// store-write countdown fires.
    #[cfg(feature = "testkit")]
    pub fn inject_faults(&mut self, faults: sdp_testkit::FaultPlan) {
        self.faults = Some(faults);
    }

    /// Persist one plan record. Rotates and compacts as thresholds
    /// dictate; on I/O failure the record is dropped from the durable
    /// tier (counted) but the in-memory cache above is unaffected.
    pub fn append(&mut self, record: &PlanRecord) -> Result<(), StoreError> {
        debug_assert_eq!(
            record.stats_epoch, self.epoch,
            "caller must stamp records with the store's epoch"
        );
        let payload = encode_plan(record);
        self.active.append(&payload)?;
        self.counters.record_write();
        self.live.insert(RecordKey::of(record), payload);

        #[cfg(feature = "testkit")]
        if let Some(faults) = &self.faults {
            if faults.take_store_crash() {
                // Simulated power loss at an append boundary; the
                // recovery path must cope with whatever hit the disk.
                std::process::abort();
            }
        }

        if self.active.len_bytes() > self.options.max_segment_bytes {
            self.rotate()?;
        }
        if self.sealed.len() >= self.options.compact_after_segments {
            self.compact()?;
        }
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), StoreError> {
        let sealed_path = self.active.path().to_path_buf();
        self.sealed.push((self.active_index, sealed_path));
        self.active_index += 1;
        let path = segment_path(&self.dir, self.active_index);
        let (active, _, _) = FramedLog::open(&path, PLAN_LOG_KIND)?;
        self.active = active;
        Ok(())
    }

    /// Rewrite the live view into one fresh segment and delete every
    /// older file. Crash-safe without a rename dance: the new segment
    /// is written before anything is deleted, and replay is
    /// latest-wins, so an interruption leaves duplicates, not loss.
    fn compact(&mut self) -> Result<(), StoreError> {
        let old_active = self.active.path().to_path_buf();
        let old_index = self.active_index;
        self.active_index += 1;
        let path = segment_path(&self.dir, self.active_index);
        let (mut active, _, _) = FramedLog::open(&path, PLAN_LOG_KIND)?;
        for payload in self.live.values() {
            active.append(payload)?;
        }
        self.active = active;
        for (_, path) in self.sealed.drain(..) {
            std::fs::remove_file(&path).map_err(|e| StoreError::io(&path, e))?;
        }
        std::fs::remove_file(&old_active).map_err(|e| StoreError::io(&old_active, e))?;
        let _ = old_index;
        self.counters.record_compaction();
        Ok(())
    }

    /// Number of live records (latest per key, current epoch).
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Number of sealed (rotation-closed) segments awaiting
    /// compaction.
    pub fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The stats epoch this store was opened under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use sdp_catalog::RelId;
    use sdp_core::{NodeCounter, PlanNode, PlanOp, Rung};
    use sdp_query::RelSet;

    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdp-store-seg-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(fingerprint: u128, epoch: u64, cost: f64) -> PlanRecord {
        let counter = NodeCounter::new();
        let root = PlanNode::new(
            &counter,
            PlanOp::SeqScan {
                rel: RelId(0),
                node: 0,
            },
            RelSet::single(0),
            10.0,
            cost,
            None,
            vec![],
        );
        PlanRecord {
            fingerprint,
            stats_epoch: epoch,
            rung: Some(Rung::Dp),
            enumerator: EnumeratorKind::LevelScan,
            algo_repr: "auto".to_string(),
            strategy: "DP".to_string(),
            degradations: 0,
            cost,
            rows: 10.0,
            root,
        }
    }

    fn open(
        dir: &Path,
        epoch: u64,
        options: StoreOptions,
    ) -> (PlanStore, Vec<PlanRecord>, OpenStats) {
        PlanStore::open(dir, epoch, options, Arc::new(StoreCounters::default())).unwrap()
    }

    #[test]
    fn replay_is_latest_wins_and_epoch_checked() {
        let dir = temp_dir("latest-wins");
        {
            let (mut store, _, _) = open(&dir, 1, StoreOptions::default());
            store.append(&record(1, 1, 5.0)).unwrap();
            store.append(&record(2, 1, 7.0)).unwrap();
            store.append(&record(1, 1, 3.0)).unwrap(); // re-optimized
        }
        let (store, records, stats) = open(&dir, 1, StoreOptions::default());
        assert_eq!(stats.live, 2);
        assert_eq!(store.live_len(), 2);
        let fp1 = records.iter().find(|r| r.fingerprint == 1).unwrap();
        assert_eq!(fp1.cost, 3.0);
        drop(store);

        // Same directory, bumped epoch: everything is stale.
        let (_, records, stats) = open(&dir, 2, StoreOptions::default());
        assert!(records.is_empty());
        assert_eq!(stats.stale_dropped, 3);
        assert_eq!(stats.live, 0);
    }

    #[test]
    fn rotation_and_compaction_preserve_the_live_view() {
        let dir = temp_dir("compact");
        let options = StoreOptions {
            max_segment_bytes: 256, // force a rotation every couple of records
            compact_after_segments: 2,
        };
        let counters = Arc::new(StoreCounters::default());
        {
            let (mut store, _, _) =
                PlanStore::open(&dir, 1, options, Arc::clone(&counters)).unwrap();
            for i in 0..20u128 {
                store.append(&record(i % 5, 1, i as f64)).unwrap();
            }
            assert!(counters.snapshot().compactions > 0, "compaction never ran");
        }
        // Fewer files than one per rotation — compaction deleted them.
        let files = list_segments(&dir).unwrap();
        assert!(
            files.len() <= 3,
            "expected compacted store, found {files:?}"
        );

        let (_, records, _) = open(&dir, 1, options);
        assert_eq!(records.len(), 5);
        for r in &records {
            // Latest write for key k was iteration 15 + k.
            assert_eq!(r.cost, 15.0 + r.fingerprint as f64);
        }
    }

    #[test]
    fn mixed_epoch_log_drops_only_stale_records() {
        let dir = temp_dir("mixed-epoch");
        {
            let (mut store, _, _) = open(&dir, 1, StoreOptions::default());
            store.append(&record(1, 1, 5.0)).unwrap();
        }
        {
            let (mut store, _, _) = open(&dir, 2, StoreOptions::default());
            store.append(&record(2, 2, 6.0)).unwrap();
        }
        let (_, records, stats) = open(&dir, 2, StoreOptions::default());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].fingerprint, 2);
        assert_eq!(stats.stale_dropped, 1);
    }

    #[test]
    fn stale_record_shadows_older_live_one_for_same_key() {
        let dir = temp_dir("shadow");
        {
            let (mut store, _, _) = open(&dir, 1, StoreOptions::default());
            store.append(&record(1, 1, 5.0)).unwrap();
        }
        {
            // Same key re-optimized under epoch 2: the epoch-1 record
            // must not resurface when reopening at epoch 1.
            let (mut store, _, _) = open(&dir, 2, StoreOptions::default());
            store.append(&record(1, 2, 6.0)).unwrap();
        }
        let (_, records, _) = open(&dir, 1, StoreOptions::default());
        assert!(records.is_empty(), "epoch-1 plan resurfaced: {records:?}");
    }
}
