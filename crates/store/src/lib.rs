//! # sdp-store — durable plan store with warm restart and a DLQ
//!
//! The persistence tier under the resident optimizer service. Three
//! layers, bottom up:
//!
//! * [`log`] — CRC-framed append-only log files with torn-tail
//!   recovery, the shared durability primitive;
//! * [`codec`] — the versioned, deterministic binary codec for
//!   optimized plans ([`codec::PlanRecord`]) and failed requests
//!   ([`codec::DlqRecord`]); `decode(encode(p))` is bit-identical for
//!   costing and explain, enforced by an embedded structural digest;
//! * [`store`] / [`dlq`] — the write-behind plan segment store (epoch
//!   checked, size-triggered compaction) and the dead-letter queue of
//!   requests that exhausted the degradation ladder.
//!
//! The service layer owns policy: *what* to persist (fresh optimized
//! plans keyed like the in-memory cache), *when* (from a write-behind
//! thread off the request path), and *how* to warm-start (replaying
//! live records into the slab-LRU before serving). This crate owns
//! mechanism only, so every piece is testable against plain
//! directories without standing up a daemon.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::path::{Path, PathBuf};

pub mod codec;
pub mod dlq;
pub mod log;
pub mod store;

pub use codec::{
    DlqDegradation, DlqErrorKind, DlqRecord, PlanRecord, CODEC_VERSION, MIN_CODEC_VERSION,
};
pub use dlq::DeadLetterQueue;
pub use log::{crc32, FramedLog, RecoveryStats, LOG_MAGIC, MAX_RECORD_BYTES};
pub use store::{OpenStats, PlanStore, RecordKey, StoreOptions};

/// Errors surfaced by the store.
///
/// Recovery-time data problems (torn tails, CRC failures) are *not*
/// errors — they are expected after a crash and handled by
/// truncation, reported via [`RecoveryStats`]. `StoreError` covers the
/// cases the store cannot self-heal: filesystem failures, files that
/// are not sdp-store logs at all, and payloads that frame-check but do
/// not decode.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// File or directory the operation targeted.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// A file exists but is not the expected kind of sdp-store log.
    Format(String),
    /// A record payload passed its CRC but failed to decode (version
    /// skew, unknown tags, digest mismatch).
    Codec(String),
}

impl StoreError {
    pub(crate) fn io(path: &Path, source: std::io::Error) -> Self {
        StoreError::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            StoreError::Format(msg) => write!(f, "log format error: {msg}"),
            StoreError::Codec(msg) => write!(f, "record codec error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
