//! The dead-letter queue: failed requests persisted for offline
//! replay.
//!
//! A DLQ is one kind-2 framed log (`dlq.log`) inside its directory.
//! Enqueues append; draining decodes every record, re-optimizes, and
//! calls [`DeadLetterQueue::rewrite`] with whatever still fails — the
//! rewrite goes through a temp file plus atomic rename, so a crash
//! mid-drain leaves either the old queue or the new one, never a
//! half-written file.

use std::path::{Path, PathBuf};

use crate::codec::{decode_dlq, encode_dlq, DlqRecord};
use crate::log::{FramedLog, RecoveryStats};
use crate::StoreError;

/// Log-kind tag for dead-letter queues.
pub const DLQ_LOG_KIND: u32 = 2;

/// File name of the queue inside its directory.
pub const DLQ_FILE: &str = "dlq.log";

/// An open dead-letter queue.
#[derive(Debug)]
pub struct DeadLetterQueue {
    dir: PathBuf,
    log: FramedLog,
    records: Vec<DlqRecord>,
}

impl DeadLetterQueue {
    /// Open (creating if needed) the queue under `dir`. Returns the
    /// queue, per-file recovery stats, and the count of records that
    /// frame-checked but failed to decode (skipped).
    pub fn open(dir: &Path) -> Result<(Self, RecoveryStats, u64), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        let path = dir.join(DLQ_FILE);
        let (log, payloads, recovery) = FramedLog::open(&path, DLQ_LOG_KIND)?;
        let mut records = Vec::with_capacity(payloads.len());
        let mut undecodable = 0u64;
        for payload in payloads {
            match decode_dlq(&payload) {
                Ok(record) => records.push(record),
                Err(StoreError::Codec(_)) => undecodable += 1,
                Err(e) => return Err(e),
            }
        }
        Ok((
            DeadLetterQueue {
                dir: dir.to_path_buf(),
                log,
                records,
            },
            recovery,
            undecodable,
        ))
    }

    /// Records currently in the queue, oldest first.
    pub fn records(&self) -> &[DlqRecord] {
        &self.records
    }

    /// Queue depth.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append one failed request.
    pub fn enqueue(&mut self, record: DlqRecord) -> Result<(), StoreError> {
        self.log.append(&encode_dlq(&record))?;
        self.records.push(record);
        Ok(())
    }

    /// Replace the queue's contents with `remaining` (the records that
    /// failed again during a drain). Atomic: written to a temp file
    /// and renamed over the live queue.
    pub fn rewrite(&mut self, remaining: Vec<DlqRecord>) -> Result<(), StoreError> {
        let tmp = self.dir.join("dlq.log.tmp");
        let _ = std::fs::remove_file(&tmp);
        {
            let (mut log, _, _) = FramedLog::open(&tmp, DLQ_LOG_KIND)?;
            for record in &remaining {
                log.append(&encode_dlq(record))?;
            }
        }
        let live = self.dir.join(DLQ_FILE);
        std::fs::rename(&tmp, &live).map_err(|e| StoreError::io(&live, e))?;
        let (log, _, _) = FramedLog::open(&live, DLQ_LOG_KIND)?;
        self.log = log;
        self.records = remaining;
        Ok(())
    }

    /// The directory this queue lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use sdp_catalog::{ColId, RelId};
    use sdp_core::EnumeratorKind;
    use sdp_query::{ColRef, JoinEdge, JoinGraph, Query};

    use crate::codec::DlqErrorKind;

    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdp-store-dlq-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(fingerprint: u128) -> DlqRecord {
        let graph = JoinGraph::new(
            vec![RelId(0), RelId(1)],
            vec![JoinEdge::new(
                ColRef::new(0, ColId(0)),
                ColRef::new(1, ColId(0)),
            )],
        );
        DlqRecord {
            fingerprint,
            stats_epoch: 1,
            enumerator: EnumeratorKind::LevelScan,
            algorithm: None,
            error_kind: DlqErrorKind::Timeout,
            error: "deadline expired at GOO".to_string(),
            degradations: vec![],
            deadline_ms: Some(1),
            memory_bytes: None,
            sql: "SELECT ...".to_string(),
            query: Query::new(graph),
        }
    }

    #[test]
    fn enqueue_survives_reopen_and_rewrite_drains() {
        let dir = temp_dir("roundtrip");
        {
            let (mut dlq, _, _) = DeadLetterQueue::open(&dir).unwrap();
            dlq.enqueue(sample(1)).unwrap();
            dlq.enqueue(sample(2)).unwrap();
            assert_eq!(dlq.len(), 2);
        }
        let (mut dlq, recovery, undecodable) = DeadLetterQueue::open(&dir).unwrap();
        assert_eq!(dlq.len(), 2);
        assert_eq!(recovery.records, 2);
        assert_eq!(undecodable, 0);
        assert_eq!(dlq.records()[0].fingerprint, 1);

        // Drain: record 2 "failed again", record 1 succeeded.
        let keep: Vec<_> = dlq
            .records()
            .iter()
            .filter(|r| r.fingerprint == 2)
            .cloned()
            .collect();
        dlq.rewrite(keep).unwrap();
        assert_eq!(dlq.len(), 1);

        let (dlq, _, _) = DeadLetterQueue::open(&dir).unwrap();
        assert_eq!(dlq.len(), 1);
        assert_eq!(dlq.records()[0].fingerprint, 2);
    }

    #[test]
    fn rewrite_to_empty_leaves_an_empty_queue() {
        let dir = temp_dir("empty");
        let (mut dlq, _, _) = DeadLetterQueue::open(&dir).unwrap();
        dlq.enqueue(sample(9)).unwrap();
        dlq.rewrite(Vec::new()).unwrap();
        assert!(dlq.is_empty());
        drop(dlq);
        let (dlq, _, _) = DeadLetterQueue::open(&dir).unwrap();
        assert!(dlq.is_empty());
    }
}
