//! Versioned, deterministic binary codec for optimized plans and
//! dead-letter records.
//!
//! Hand-rolled little-endian encoding, like every other wire format in
//! the workspace (metrics JSON, chrome traces): the formats are small
//! and taking a serialization dependency for them would be the tail
//! wagging the dog. Determinism is structural — encoding visits the
//! plan tree pre-order and every field has a fixed width or an
//! explicit length prefix — so equal records encode to equal bytes on
//! every platform.
//!
//! # Round-trip guarantee
//!
//! `decode(encode(p))` reconstructs the plan tree field-for-field:
//! operator tags come from the *same* stable-tag surface
//! ([`PlanOp::stable_tag`], `JoinMethod::stable_tag`,
//! `Rung::stable_tag`, `EnumeratorKind::stable_tag`) that
//! [`PlanNode::structural_digest`] hashes, and rows/costs are stored
//! as exact `f64` bit patterns — so a decoded plan digests identically
//! to the one encoded, which is what "bit-identical for costing and
//! explain" means operationally. The encoder embeds the root digest
//! and the decoder re-derives and checks it, so a codec regression
//! fails loudly at decode time instead of silently serving a mutated
//! plan.
//!
//! Every payload opens with a version byte. Records written by a
//! future format version fail decoding with a versioned error; the
//! segment replayer skips (and counts) them rather than refusing the
//! whole log. Older supported versions decode compatibly:
//!
//! * **v1 → v2** — v2 appends the query's `GROUP BY` column to the
//!   dead-letter query encoding (plan payloads are byte-identical
//!   apart from the version stamp). v1 records decode with
//!   `group_by = None` — they replay group-blind rather than being
//!   dropped.

use std::sync::Arc;

use sdp_catalog::{ColId, RelId};
use sdp_core::{
    Algorithm, DegradeReason, EnumeratorKind, NodeCounter, PlanNode, PlanOp, Rung, SdpConfig,
};
use sdp_cost::JoinMethod;
use sdp_query::{ColRef, JoinEdge, JoinGraph, PredOp, Predicate, Query, RelSet};

use crate::StoreError;

/// Current codec version, stamped on every payload.
pub const CODEC_VERSION: u8 = 2;

/// Oldest codec version this build still decodes.
pub const MIN_CODEC_VERSION: u8 = 1;

/// One persisted plan: the record of the `(fingerprint, stats_epoch,
/// rung, enumerator) → plan` map plus the provenance the service layer
/// caches alongside.
#[derive(Debug, Clone)]
pub struct PlanRecord {
    /// WL fingerprint of the query the plan answers.
    pub fingerprint: u128,
    /// Statistics epoch the plan was optimized under.
    pub stats_epoch: u64,
    /// Ladder rung that produced the plan (`None` for off-ladder
    /// strategies).
    pub rung: Option<Rung>,
    /// Pair-enumeration strategy the plan was produced with.
    pub enumerator: EnumeratorKind,
    /// Identity of the *requested* strategy (its `Debug` rendering) —
    /// the in-memory cache folds this into the plan key, so warm
    /// restart must reproduce it exactly.
    pub algo_repr: String,
    /// Display label of the strategy that produced the plan.
    pub strategy: String,
    /// Ladder descents taken while producing the plan.
    pub degradations: u64,
    /// Estimated plan cost.
    pub cost: f64,
    /// Estimated output rows.
    pub rows: f64,
    /// Root of the plan tree.
    pub root: Arc<PlanNode>,
}

/// Why a request landed in the dead-letter queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DlqErrorKind {
    /// The deadline expired on the bottom rung.
    Timeout,
    /// The memory budget tripped on the bottom rung.
    Memory,
    /// Cancellation arrived at the bottom rung.
    Cancelled,
    /// The single-flight leader panicked and the bounded retry was
    /// exhausted.
    LeaderPanicked,
    /// Any other terminal error.
    Other,
    /// The fingerprint's circuit breaker was open: the request was
    /// rejected fast without entering enumeration.
    BreakerOpen,
}

impl DlqErrorKind {
    fn stable_tag(self) -> u8 {
        match self {
            DlqErrorKind::Timeout => 1,
            DlqErrorKind::Memory => 2,
            DlqErrorKind::Cancelled => 3,
            DlqErrorKind::LeaderPanicked => 4,
            DlqErrorKind::Other => 5,
            DlqErrorKind::BreakerOpen => 6,
        }
    }

    fn from_stable_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(DlqErrorKind::Timeout),
            2 => Some(DlqErrorKind::Memory),
            3 => Some(DlqErrorKind::Cancelled),
            4 => Some(DlqErrorKind::LeaderPanicked),
            5 => Some(DlqErrorKind::Other),
            6 => Some(DlqErrorKind::BreakerOpen),
            _ => None,
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            DlqErrorKind::Timeout => "timeout",
            DlqErrorKind::Memory => "memory",
            DlqErrorKind::Cancelled => "cancelled",
            DlqErrorKind::LeaderPanicked => "leader-panicked",
            DlqErrorKind::Other => "other",
            DlqErrorKind::BreakerOpen => "breaker-open",
        }
    }
}

/// One descent recorded in a dead-letter record (the deterministic
/// facts of a `DegradeEvent`; elapsed wall-clock stays out of the
/// persisted form, same policy as trace canonicalization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlqDegradation {
    /// Rung abandoned.
    pub from: Rung,
    /// Rung descended to.
    pub to: Rung,
    /// Why.
    pub reason: DegradeReason,
}

/// A failed request serialized as a replayable artifact: the query
/// canon (structural encoding + rendered SQL), the fault context, and
/// the ladder-descent history.
#[derive(Debug, Clone)]
pub struct DlqRecord {
    /// WL fingerprint of the failing query.
    pub fingerprint: u128,
    /// Statistics epoch the failure happened under.
    pub stats_epoch: u64,
    /// Pair-enumeration strategy in effect.
    pub enumerator: EnumeratorKind,
    /// The pinned strategy, canonicalized; `None` when the request let
    /// the topology selector choose (re-optimization re-runs the
    /// selector, which is deterministic for a given query).
    pub algorithm: Option<Algorithm>,
    /// Error classification.
    pub error_kind: DlqErrorKind,
    /// Rendered error message.
    pub error: String,
    /// Ladder descents taken before the run gave up.
    pub degradations: Vec<DlqDegradation>,
    /// The original request's deadline in milliseconds, if any.
    pub deadline_ms: Option<u64>,
    /// The original request's memory budget in bytes, if any.
    pub memory_bytes: Option<u64>,
    /// The query rendered as SQL (human-readable canon).
    pub sql: String,
    /// The query itself, structurally encoded for deterministic
    /// re-optimization.
    pub query: Query,
}

// ---------------------------------------------------------------------
// byte-level helpers

struct Writer(Vec<u8>);

impl Writer {
    fn new() -> Self {
        Writer(Vec::with_capacity(256))
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u128(&mut self, v: u128) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize);
        self.u16(s.len() as u16);
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.bytes.len() - self.pos < n {
            return Err(StoreError::Codec(format!(
                "record truncated: wanted {n} bytes at offset {}",
                self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn u128(&mut self) -> Result<u128, StoreError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16")))
    }

    fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64_bits(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StoreError::Codec(format!("invalid utf-8 string: {e}")))
    }

    fn finish(&self) -> Result<(), StoreError> {
        if self.pos != self.bytes.len() {
            return Err(StoreError::Codec(format!(
                "{} trailing bytes after record",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn check_version(reader: &mut Reader<'_>) -> Result<u8, StoreError> {
    let version = reader.u8()?;
    if !(MIN_CODEC_VERSION..=CODEC_VERSION).contains(&version) {
        return Err(StoreError::Codec(format!(
            "unsupported codec version {version} \
             (this build reads {MIN_CODEC_VERSION}..={CODEC_VERSION})"
        )));
    }
    Ok(version)
}

// ---------------------------------------------------------------------
// plan trees

fn encode_node(w: &mut Writer, node: &PlanNode) {
    w.u8(node.op.stable_tag());
    match node.op {
        PlanOp::SeqScan { rel, node: idx } => {
            w.u32(rel.0);
            w.u16(idx as u16);
        }
        PlanOp::IndexScan {
            rel,
            node: idx,
            col,
        } => {
            w.u32(rel.0);
            w.u16(idx as u16);
            w.u16(col.0);
        }
        PlanOp::Join { method } => w.u8(method.stable_tag()),
        PlanOp::Sort { class } => w.u32(class),
    }
    w.u64(node.set.0);
    w.f64_bits(node.rows);
    w.f64_bits(node.cost);
    w.u64(match node.ordering {
        None => u64::MAX,
        Some(class) => class as u64,
    });
    w.u8(node.children.len() as u8);
    for child in &node.children {
        encode_node(w, child);
    }
}

fn decode_node(r: &mut Reader<'_>, counter: &NodeCounter) -> Result<Arc<PlanNode>, StoreError> {
    let tag = r.u8()?;
    let op = match tag {
        1 => PlanOp::SeqScan {
            rel: RelId(r.u32()?),
            node: r.u16()? as usize,
        },
        2 => PlanOp::IndexScan {
            rel: RelId(r.u32()?),
            node: r.u16()? as usize,
            col: ColId(r.u16()?),
        },
        3 => {
            let m = r.u8()?;
            PlanOp::Join {
                method: JoinMethod::from_stable_tag(m)
                    .ok_or_else(|| StoreError::Codec(format!("unknown join-method tag {m}")))?,
            }
        }
        4 => PlanOp::Sort { class: r.u32()? },
        other => {
            return Err(StoreError::Codec(format!("unknown plan-op tag {other}")));
        }
    };
    let set = RelSet(r.u64()?);
    let rows = r.f64_bits()?;
    let cost = r.f64_bits()?;
    let ordering = match r.u64()? {
        u64::MAX => None,
        class if class <= u64::from(u32::MAX) => Some(class as u32),
        other => {
            return Err(StoreError::Codec(format!(
                "implausible ordering class {other}"
            )));
        }
    };
    if !rows.is_finite() || rows < 0.0 || !cost.is_finite() || cost < 0.0 {
        return Err(StoreError::Codec(format!(
            "implausible node estimates (rows {rows}, cost {cost})"
        )));
    }
    let n_children = r.u8()? as usize;
    let mut children = Vec::with_capacity(n_children);
    for _ in 0..n_children {
        children.push(decode_node(r, counter)?);
    }
    Ok(PlanNode::new(
        counter, op, set, rows, cost, ordering, children,
    ))
}

// ---------------------------------------------------------------------
// plan records

/// Encode a plan record as one log payload.
pub fn encode_plan(record: &PlanRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(CODEC_VERSION);
    w.u128(record.fingerprint);
    w.u64(record.stats_epoch);
    w.u8(record.rung.map(|r| r.stable_tag()).unwrap_or(0));
    w.u8(record.enumerator.stable_tag());
    w.str(&record.algo_repr);
    w.str(&record.strategy);
    w.u64(record.degradations);
    w.f64_bits(record.cost);
    w.f64_bits(record.rows);
    w.u64(record.root.structural_digest());
    encode_node(&mut w, &record.root);
    w.0
}

/// Decode a plan record. The plan tree is rebuilt under a fresh
/// [`NodeCounter`] (persisted plans do not charge any optimization
/// run's memory model), and the embedded structural digest is
/// re-checked so a corrupt-but-CRC-valid or version-skewed payload
/// cannot smuggle in a mutated plan.
pub fn decode_plan(payload: &[u8]) -> Result<PlanRecord, StoreError> {
    let mut r = Reader::new(payload);
    check_version(&mut r)?;
    let fingerprint = r.u128()?;
    let stats_epoch = r.u64()?;
    let rung = match r.u8()? {
        0 => None,
        tag => Some(
            Rung::from_stable_tag(tag)
                .ok_or_else(|| StoreError::Codec(format!("unknown rung tag {tag}")))?,
        ),
    };
    let enumerator_tag = r.u8()?;
    let enumerator = EnumeratorKind::from_stable_tag(enumerator_tag)
        .ok_or_else(|| StoreError::Codec(format!("unknown enumerator tag {enumerator_tag}")))?;
    let algo_repr = r.str()?;
    let strategy = r.str()?;
    let degradations = r.u64()?;
    let cost = r.f64_bits()?;
    let rows = r.f64_bits()?;
    let digest = r.u64()?;
    let counter = NodeCounter::new();
    let root = decode_node(&mut r, &counter)?;
    r.finish()?;
    if root.structural_digest() != digest {
        return Err(StoreError::Codec(
            "plan digest mismatch after decode".to_string(),
        ));
    }
    Ok(PlanRecord {
        fingerprint,
        stats_epoch,
        rung,
        enumerator,
        algo_repr,
        strategy,
        degradations,
        cost,
        rows,
        root,
    })
}

// ---------------------------------------------------------------------
// queries and algorithms (dead-letter records)

fn pred_op_tag(op: PredOp) -> u8 {
    match op {
        PredOp::Eq => 1,
        PredOp::Lt => 2,
        PredOp::Le => 3,
        PredOp::Gt => 4,
        PredOp::Ge => 5,
    }
}

fn pred_op_from_tag(tag: u8) -> Option<PredOp> {
    match tag {
        1 => Some(PredOp::Eq),
        2 => Some(PredOp::Lt),
        3 => Some(PredOp::Le),
        4 => Some(PredOp::Gt),
        5 => Some(PredOp::Ge),
        _ => None,
    }
}

fn encode_colref(w: &mut Writer, col: ColRef) {
    w.u16(col.node as u16);
    w.u16(col.col.0);
}

fn decode_colref(r: &mut Reader<'_>) -> Result<ColRef, StoreError> {
    let node = r.u16()? as usize;
    let col = ColId(r.u16()?);
    Ok(ColRef::new(node, col))
}

fn encode_query(w: &mut Writer, query: &Query) {
    let graph = &query.graph;
    w.u16(graph.relations().len() as u16);
    for rel in graph.relations() {
        w.u32(rel.0);
    }
    w.u16(graph.edges().len() as u16);
    for edge in graph.edges() {
        encode_colref(w, edge.left);
        encode_colref(w, edge.right);
    }
    w.u16(graph.filters().len() as u16);
    for filter in graph.filters() {
        encode_colref(w, filter.column);
        w.u8(pred_op_tag(filter.op));
        w.i64(filter.value);
    }
    match query.order_by {
        None => w.u8(0),
        Some(order) => {
            w.u8(1);
            encode_colref(w, order.column);
        }
    }
    // v2: GROUP BY, appended last so v1 payloads are a strict prefix.
    match query.group_by {
        None => w.u8(0),
        Some(group) => {
            w.u8(1);
            encode_colref(w, group.column);
        }
    }
}

fn decode_query(r: &mut Reader<'_>, version: u8) -> Result<Query, StoreError> {
    let n_rels = r.u16()? as usize;
    let mut relations = Vec::with_capacity(n_rels);
    for _ in 0..n_rels {
        relations.push(RelId(r.u32()?));
    }
    let n_edges = r.u16()? as usize;
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let left = decode_colref(r)?;
        let right = decode_colref(r)?;
        edges.push(JoinEdge::new(left, right));
    }
    let mut graph = JoinGraph::new(relations, edges);
    let n_filters = r.u16()? as usize;
    for _ in 0..n_filters {
        let column = decode_colref(r)?;
        let tag = r.u8()?;
        let op = pred_op_from_tag(tag)
            .ok_or_else(|| StoreError::Codec(format!("unknown predicate-op tag {tag}")))?;
        let value = r.i64()?;
        graph.add_filter(Predicate::new(column, op, value));
    }
    let mut query = Query::new(graph);
    if r.u8()? == 1 {
        let column = decode_colref(r)?;
        query = query.with_order_by(column);
    }
    // v1 records predate GROUP BY; they replay group-blind.
    if version >= 2 && r.u8()? == 1 {
        let column = decode_colref(r)?;
        query = query.with_group_by(column);
    }
    Ok(query)
}

/// The requested strategy, canonicalized to the nearest paper-default
/// configuration (non-default `f64` tunings do not survive the trip;
/// the fault context is what matters for replay, and descents use
/// canonical configurations anyway). Tag 0 means "let the selector
/// choose".
fn encode_algorithm(w: &mut Writer, algorithm: Option<Algorithm>) {
    let (tag, param): (u8, u64) = match algorithm {
        None => (0, 0),
        Some(Algorithm::Dp) => (1, 0),
        Some(Algorithm::Sdp(_)) => (2, 0),
        Some(Algorithm::Idp { k }) => (3, k as u64),
        Some(Algorithm::IdpStandard { k }) => (4, k as u64),
        Some(Algorithm::Goo) => (5, 0),
        Some(Algorithm::IterativeImprovement(_)) => (6, 0),
        Some(Algorithm::SimulatedAnnealing(_)) => (7, 0),
    };
    w.u8(tag);
    w.u64(param);
}

fn decode_algorithm(r: &mut Reader<'_>) -> Result<Option<Algorithm>, StoreError> {
    let tag = r.u8()?;
    let param = r.u64()?;
    Ok(match tag {
        0 => None,
        1 => Some(Algorithm::Dp),
        2 => Some(Algorithm::Sdp(SdpConfig::paper())),
        3 => Some(Algorithm::Idp { k: param as usize }),
        4 => Some(Algorithm::IdpStandard { k: param as usize }),
        5 => Some(Algorithm::Goo),
        6 => Some(Algorithm::ii()),
        7 => Some(Algorithm::sa()),
        other => {
            return Err(StoreError::Codec(format!("unknown algorithm tag {other}")));
        }
    })
}

/// Encode a dead-letter record as one log payload.
pub fn encode_dlq(record: &DlqRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(CODEC_VERSION);
    w.u128(record.fingerprint);
    w.u64(record.stats_epoch);
    w.u8(record.enumerator.stable_tag());
    encode_algorithm(&mut w, record.algorithm);
    w.u8(record.error_kind.stable_tag());
    w.str(&record.error);
    w.u16(record.degradations.len() as u16);
    for d in &record.degradations {
        w.u8(d.from.stable_tag());
        w.u8(d.to.stable_tag());
        w.u8(d.reason.stable_tag());
    }
    w.u8(record.deadline_ms.is_some() as u8);
    w.u64(record.deadline_ms.unwrap_or(0));
    w.u8(record.memory_bytes.is_some() as u8);
    w.u64(record.memory_bytes.unwrap_or(0));
    w.str(&record.sql);
    encode_query(&mut w, &record.query);
    w.0
}

/// Decode a dead-letter record.
pub fn decode_dlq(payload: &[u8]) -> Result<DlqRecord, StoreError> {
    let mut r = Reader::new(payload);
    let version = check_version(&mut r)?;
    let fingerprint = r.u128()?;
    let stats_epoch = r.u64()?;
    let enumerator_tag = r.u8()?;
    let enumerator = EnumeratorKind::from_stable_tag(enumerator_tag)
        .ok_or_else(|| StoreError::Codec(format!("unknown enumerator tag {enumerator_tag}")))?;
    let algorithm = decode_algorithm(&mut r)?;
    let kind_tag = r.u8()?;
    let error_kind = DlqErrorKind::from_stable_tag(kind_tag)
        .ok_or_else(|| StoreError::Codec(format!("unknown error-kind tag {kind_tag}")))?;
    let error = r.str()?;
    let n_degradations = r.u16()? as usize;
    let mut degradations = Vec::with_capacity(n_degradations);
    for _ in 0..n_degradations {
        let from = r.u8()?;
        let to = r.u8()?;
        let reason = r.u8()?;
        degradations.push(DlqDegradation {
            from: Rung::from_stable_tag(from)
                .ok_or_else(|| StoreError::Codec(format!("unknown rung tag {from}")))?,
            to: Rung::from_stable_tag(to)
                .ok_or_else(|| StoreError::Codec(format!("unknown rung tag {to}")))?,
            reason: DegradeReason::from_stable_tag(reason)
                .ok_or_else(|| StoreError::Codec(format!("unknown reason tag {reason}")))?,
        });
    }
    let deadline_ms = match (r.u8()?, r.u64()?) {
        (0, _) => None,
        (_, ms) => Some(ms),
    };
    let memory_bytes = match (r.u8()?, r.u64()?) {
        (0, _) => None,
        (_, bytes) => Some(bytes),
    };
    let sql = r.str()?;
    let query = decode_query(&mut r, version)?;
    r.finish()?;
    Ok(DlqRecord {
        fingerprint,
        stats_epoch,
        enumerator,
        algorithm,
        error_kind,
        error,
        degradations,
        deadline_ms,
        memory_bytes,
        sql,
        query,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(counter: &NodeCounter, node: usize) -> Arc<PlanNode> {
        PlanNode::new(
            counter,
            PlanOp::SeqScan {
                rel: RelId(node as u32),
                node,
            },
            RelSet::single(node),
            100.0,
            3.5,
            None,
            vec![],
        )
    }

    fn sample_plan() -> PlanRecord {
        let c = NodeCounter::new();
        let left = scan(&c, 0);
        let right = PlanNode::new(
            &c,
            PlanOp::IndexScan {
                rel: RelId(7),
                node: 1,
                col: ColId(2),
            },
            RelSet::single(1),
            40.0,
            1.25,
            Some(5),
            vec![],
        );
        let join = PlanNode::new(
            &c,
            PlanOp::Join {
                method: JoinMethod::Merge,
            },
            left.set | right.set,
            60.0,
            9.75,
            Some(5),
            vec![left, right],
        );
        let root = PlanNode::new(
            &c,
            PlanOp::Sort { class: 3 },
            join.set,
            60.0,
            12.0,
            Some(3),
            vec![join],
        );
        PlanRecord {
            fingerprint: 0xdead_beef_0123_4567_89ab_cdef_0011_2233,
            stats_epoch: 4,
            rung: Some(Rung::Sdp),
            enumerator: EnumeratorKind::Dpccp,
            algo_repr: "Sdp(SdpConfig { .. })".to_string(),
            strategy: "SDP".to_string(),
            degradations: 1,
            cost: 12.0,
            rows: 60.0,
            root,
        }
    }

    #[test]
    fn plan_round_trip_is_bit_identical() {
        let record = sample_plan();
        let payload = encode_plan(&record);
        let decoded = decode_plan(&payload).unwrap();
        assert_eq!(
            decoded.root.structural_digest(),
            record.root.structural_digest()
        );
        assert_eq!(decoded.fingerprint, record.fingerprint);
        assert_eq!(decoded.stats_epoch, 4);
        assert_eq!(decoded.rung, Some(Rung::Sdp));
        assert_eq!(decoded.enumerator, EnumeratorKind::Dpccp);
        assert_eq!(decoded.algo_repr, record.algo_repr);
        assert_eq!(decoded.strategy, "SDP");
        assert_eq!(decoded.degradations, 1);
        assert_eq!(decoded.cost.to_bits(), record.cost.to_bits());
        assert_eq!(decoded.rows.to_bits(), record.rows.to_bits());
        // Encoding is deterministic: same record, same bytes.
        assert_eq!(payload, encode_plan(&decoded));
    }

    #[test]
    fn future_version_is_rejected_with_a_codec_error() {
        let mut payload = encode_plan(&sample_plan());
        payload[0] = CODEC_VERSION + 1;
        let err = decode_plan(&payload).unwrap_err();
        assert!(matches!(err, StoreError::Codec(_)), "{err}");
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn v1_plan_records_still_decode() {
        // Plan payloads are byte-identical between v1 and v2 apart
        // from the version stamp; a pre-bump record must be served,
        // not dropped. (The sample carries sort enforcers and order
        // properties — exactly the plans the bump was about.)
        let record = sample_plan();
        let mut payload = encode_plan(&record);
        payload[0] = 1;
        let decoded = decode_plan(&payload).expect("v1 plan record decodes");
        assert_eq!(
            decoded.root.structural_digest(),
            record.root.structural_digest()
        );
        // Re-encoding writes the current version; only byte 0 differs.
        let reencoded = encode_plan(&decoded);
        assert_eq!(reencoded[0], CODEC_VERSION);
        assert_eq!(reencoded[1..], payload[1..]);
    }

    #[test]
    fn v1_dlq_records_decode_group_blind() {
        // A v1 dead-letter payload ends at the ORDER BY field: strip
        // the trailing GROUP BY flag (encoded as one 0x00 byte when
        // absent) and stamp version 1. It must decode with
        // `group_by = None`, not error out.
        let graph = JoinGraph::new(
            vec![RelId(1), RelId(2)],
            vec![JoinEdge::new(
                ColRef::new(0, ColId(0)),
                ColRef::new(1, ColId(1)),
            )],
        );
        let record = DlqRecord {
            fingerprint: 9,
            stats_epoch: 1,
            enumerator: EnumeratorKind::LevelScan,
            algorithm: None,
            error_kind: DlqErrorKind::Timeout,
            error: "deadline".to_string(),
            degradations: vec![],
            deadline_ms: Some(10),
            memory_bytes: None,
            sql: "SELECT * FROM ...".to_string(),
            query: Query::new(graph).with_order_by(ColRef::new(0, ColId(0))),
        };
        let mut payload = encode_dlq(&record);
        assert_eq!(*payload.last().unwrap(), 0, "absent GROUP BY is one 0x00");
        payload.pop();
        payload[0] = 1;
        let decoded = decode_dlq(&payload).expect("v1 dlq record decodes");
        assert_eq!(decoded.query.order_by, record.query.order_by);
        assert_eq!(decoded.query.group_by, None);
        assert_eq!(decoded.fingerprint, 9);
    }

    #[test]
    fn dlq_round_trip_preserves_group_by() {
        let graph = JoinGraph::new(
            vec![RelId(4), RelId(6)],
            vec![JoinEdge::new(
                ColRef::new(0, ColId(2)),
                ColRef::new(1, ColId(0)),
            )],
        );
        let record = DlqRecord {
            fingerprint: 11,
            stats_epoch: 3,
            enumerator: EnumeratorKind::Dpccp,
            algorithm: Some(Algorithm::Goo),
            error_kind: DlqErrorKind::Cancelled,
            error: "cancelled".to_string(),
            degradations: vec![],
            deadline_ms: None,
            memory_bytes: Some(1 << 20),
            sql: "SELECT * FROM ...".to_string(),
            query: Query::new(graph).with_group_by(ColRef::new(1, ColId(0))),
        };
        let payload = encode_dlq(&record);
        let decoded = decode_dlq(&payload).unwrap();
        assert_eq!(decoded.query.group_by, record.query.group_by);
        assert_eq!(decoded.query.order_by, None);
        assert_eq!(payload, encode_dlq(&decoded));
    }

    #[test]
    fn digest_check_catches_payload_mutation() {
        let mut payload = encode_plan(&sample_plan());
        // Flip a bit inside the cost of the last node (tail of the
        // payload), past the embedded digest.
        let n = payload.len();
        payload[n - 20] ^= 0x40;
        let err = decode_plan(&payload).unwrap_err();
        assert!(matches!(err, StoreError::Codec(_)), "{err}");
    }

    #[test]
    fn dlq_round_trip_preserves_query_and_context() {
        let mut graph = JoinGraph::new(
            vec![RelId(0), RelId(3), RelId(5)],
            vec![
                JoinEdge::new(ColRef::new(0, ColId(0)), ColRef::new(1, ColId(1))),
                JoinEdge::new(ColRef::new(1, ColId(0)), ColRef::new(2, ColId(2))),
            ],
        );
        graph.add_filter(Predicate::new(ColRef::new(2, ColId(1)), PredOp::Lt, -42));
        let query = Query::new(graph).with_order_by(ColRef::new(0, ColId(0)));
        let record = DlqRecord {
            fingerprint: 77,
            stats_epoch: 2,
            enumerator: EnumeratorKind::LevelScan,
            algorithm: Some(Algorithm::Idp { k: 4 }),
            error_kind: DlqErrorKind::Memory,
            error: "memory exhausted at GOO".to_string(),
            degradations: vec![
                DlqDegradation {
                    from: Rung::Dp,
                    to: Rung::Sdp,
                    reason: DegradeReason::Memory,
                },
                DlqDegradation {
                    from: Rung::Sdp,
                    to: Rung::Idp,
                    reason: DegradeReason::Memory,
                },
            ],
            deadline_ms: Some(250),
            memory_bytes: None,
            sql: "SELECT * FROM ...".to_string(),
            query,
        };
        let payload = encode_dlq(&record);
        let decoded = decode_dlq(&payload).unwrap();
        assert_eq!(decoded.fingerprint, 77);
        assert_eq!(decoded.enumerator, EnumeratorKind::LevelScan);
        assert!(matches!(decoded.algorithm, Some(Algorithm::Idp { k: 4 })));
        assert_eq!(decoded.error_kind, DlqErrorKind::Memory);
        assert_eq!(decoded.degradations, record.degradations);
        assert_eq!(decoded.deadline_ms, Some(250));
        assert_eq!(decoded.memory_bytes, None);
        assert_eq!(
            decoded.query.graph.relations(),
            record.query.graph.relations()
        );
        assert_eq!(decoded.query.graph.edges(), record.query.graph.edges());
        assert_eq!(
            decoded.query.graph.filters().len(),
            record.query.graph.filters().len()
        );
        assert_eq!(decoded.query.order_by, record.query.order_by);
        assert_eq!(payload, encode_dlq(&decoded));
    }

    #[test]
    fn truncated_payload_is_a_codec_error() {
        let payload = encode_plan(&sample_plan());
        let err = decode_plan(&payload[..payload.len() - 3]).unwrap_err();
        assert!(matches!(err, StoreError::Codec(_)), "{err}");
    }
}
