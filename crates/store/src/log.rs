//! CRC-framed append-only log files, the durability primitive under
//! both the plan segments and the dead-letter queue.
//!
//! A log file is a 12-byte header (`SDPLOG01` magic + a `u32` kind
//! tag) followed by records framed as `[len: u32 LE][crc32: u32 LE]
//! [payload]`. The CRC covers the payload only; the length is bounded
//! so a corrupt length word cannot trigger a giant allocation.
//!
//! Recovery reads records until the first frame that is short, over
//! long, or fails its CRC, then **truncates the file there**: a crash
//! mid-append leaves a torn tail, and everything before it is intact
//! by construction (appends are sequential and flushed in frame
//! order). A torn frame and a corrupt mid-file frame are
//! indistinguishable without a second checksum pass, so both are
//! treated as end-of-log — the records after a corrupt frame were
//! written after it and would be suspect anyway.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::StoreError;

/// File magic for every `sdp-store` log file.
pub const LOG_MAGIC: [u8; 8] = *b"SDPLOG01";

/// Largest accepted record payload (a plan for 64 relations encodes
/// in a few KiB; 16 MiB is generous headroom and a firm bound against
/// corrupt length words).
pub const MAX_RECORD_BYTES: u32 = 16 << 20;

const HEADER_BYTES: u64 = 12;
const FRAME_BYTES: usize = 8;

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Hand-rolled like every
/// other codec in the workspace; the table is built on first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// What recovery found (and did) while opening one log file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Intact records recovered.
    pub records: u64,
    /// Whether a torn or corrupt tail was truncated away.
    pub truncated: bool,
    /// Bytes discarded by the truncation.
    pub truncated_bytes: u64,
}

impl RecoveryStats {
    /// Fold another file's recovery outcome into this one.
    pub fn merge(&mut self, other: RecoveryStats) {
        self.records += other.records;
        self.truncated |= other.truncated;
        self.truncated_bytes += other.truncated_bytes;
    }
}

/// One open CRC-framed log file, positioned for appends.
#[derive(Debug)]
pub struct FramedLog {
    path: PathBuf,
    file: File,
    /// Clean length in bytes (header + intact frames).
    len: u64,
}

impl FramedLog {
    /// Open (creating if absent) the log at `path` with the given kind
    /// tag, recover its intact records, and truncate any torn tail.
    /// Returns the log positioned for appends plus the recovered
    /// payloads in write order.
    pub fn open(path: &Path, kind: u32) -> Result<(Self, Vec<Vec<u8>>, RecoveryStats), StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        let total = file.metadata().map_err(|e| StoreError::io(path, e))?.len();

        if total < HEADER_BYTES {
            // Fresh file (or a crash before even the header landed):
            // (re)write the header and start empty.
            file.set_len(0).map_err(|e| StoreError::io(path, e))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| StoreError::io(path, e))?;
            let mut header = Vec::with_capacity(HEADER_BYTES as usize);
            header.extend_from_slice(&LOG_MAGIC);
            header.extend_from_slice(&kind.to_le_bytes());
            file.write_all(&header)
                .map_err(|e| StoreError::io(path, e))?;
            file.flush().map_err(|e| StoreError::io(path, e))?;
            let truncated = total > 0;
            return Ok((
                FramedLog {
                    path: path.to_path_buf(),
                    file,
                    len: HEADER_BYTES,
                },
                Vec::new(),
                RecoveryStats {
                    records: 0,
                    truncated,
                    truncated_bytes: total,
                },
            ));
        }

        file.seek(SeekFrom::Start(0))
            .map_err(|e| StoreError::io(path, e))?;
        let mut header = [0u8; HEADER_BYTES as usize];
        file.read_exact(&mut header)
            .map_err(|e| StoreError::io(path, e))?;
        if header[..8] != LOG_MAGIC {
            return Err(StoreError::Format(format!(
                "{}: bad magic (not an sdp-store log)",
                path.display()
            )));
        }
        let found_kind = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if found_kind != kind {
            return Err(StoreError::Format(format!(
                "{}: log kind {found_kind} where {kind} expected",
                path.display()
            )));
        }

        let mut body = Vec::with_capacity((total - HEADER_BYTES) as usize);
        file.read_to_end(&mut body)
            .map_err(|e| StoreError::io(path, e))?;

        let mut payloads = Vec::new();
        let mut clean = 0usize; // offset into `body` past the last intact frame
        loop {
            let rest = &body[clean..];
            if rest.len() < FRAME_BYTES {
                break; // short frame header (possibly zero: clean EOF)
            }
            let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
            if len > MAX_RECORD_BYTES {
                break; // corrupt length word
            }
            let end = FRAME_BYTES + len as usize;
            if rest.len() < end {
                break; // torn payload
            }
            let payload = &rest[FRAME_BYTES..end];
            if crc32(payload) != crc {
                break; // corrupt payload
            }
            payloads.push(payload.to_vec());
            clean += end;
        }

        let clean_len = HEADER_BYTES + clean as u64;
        let truncated = clean_len < total;
        if truncated {
            file.set_len(clean_len)
                .map_err(|e| StoreError::io(path, e))?;
        }
        file.seek(SeekFrom::Start(clean_len))
            .map_err(|e| StoreError::io(path, e))?;

        let records = payloads.len() as u64;
        Ok((
            FramedLog {
                path: path.to_path_buf(),
                file,
                len: clean_len,
            },
            payloads,
            RecoveryStats {
                records,
                truncated,
                truncated_bytes: total - clean_len,
            },
        ))
    }

    /// Append one record and flush it to the OS. Returns the new clean
    /// length.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        debug_assert!(payload.len() as u64 <= MAX_RECORD_BYTES as u64);
        let mut frame = Vec::with_capacity(FRAME_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.file
            .flush()
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.len += frame.len() as u64;
        Ok(self.len)
    }

    /// Current clean length in bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The file this log writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdp-store-log-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("test.log")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let path = temp_path("roundtrip");
        {
            let (mut log, recovered, stats) = FramedLog::open(&path, 1).unwrap();
            assert!(recovered.is_empty());
            assert!(!stats.truncated);
            log.append(b"alpha").unwrap();
            log.append(b"").unwrap();
            log.append(&[0xffu8; 300]).unwrap();
        }
        let (_, recovered, stats) = FramedLog::open(&path, 1).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(recovered[0], b"alpha");
        assert_eq!(recovered[1], b"");
        assert_eq!(recovered[2], vec![0xffu8; 300]);
        assert_eq!(stats.records, 3);
        assert!(!stats.truncated);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let path = temp_path("torn");
        {
            let (mut log, _, _) = FramedLog::open(&path, 1).unwrap();
            log.append(b"first").unwrap();
            log.append(b"second-record").unwrap();
        }
        // Tear the file mid-way through the second record's payload.
        let full = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 5).unwrap();
        drop(file);

        let (mut log, recovered, stats) = FramedLog::open(&path, 1).unwrap();
        assert_eq!(recovered, vec![b"first".to_vec()]);
        assert!(stats.truncated);
        assert_eq!(stats.truncated_bytes, 8 + 13 - 5);
        // The log is clean again: appends land after the intact tail.
        log.append(b"third").unwrap();
        drop(log);
        let (_, recovered, stats) = FramedLog::open(&path, 1).unwrap();
        assert_eq!(recovered, vec![b"first".to_vec(), b"third".to_vec()]);
        assert!(!stats.truncated);
    }

    #[test]
    fn corrupt_crc_ends_the_log_there() {
        let path = temp_path("crc");
        {
            let (mut log, _, _) = FramedLog::open(&path, 1).unwrap();
            log.append(b"keep").unwrap();
            log.append(b"mangle-me").unwrap();
        }
        // Flip a byte inside the second payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let (_, recovered, stats) = FramedLog::open(&path, 1).unwrap();
        assert_eq!(recovered, vec![b"keep".to_vec()]);
        assert!(stats.truncated);
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let path = temp_path("kind");
        {
            FramedLog::open(&path, 1).unwrap();
        }
        let err = FramedLog::open(&path, 2).unwrap_err();
        assert!(matches!(err, StoreError::Format(_)), "{err}");
    }
}
