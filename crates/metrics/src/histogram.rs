//! Generic log2 histograms over a tick axis.
//!
//! [`Histogram<T>`] generalizes the original latency-only histogram so
//! the same bucket math, quantile estimator, and commutative merge
//! serve both wall-clock samples ([`LatencyHistogram`], ticks = µs)
//! and dimensionless cardinality-accuracy ratios
//! ([`QErrorHistogram`], ticks = 1/1024ths). Bucket `i` counts samples
//! whose tick value has `floor(log2(ticks)) == i`; sub-tick samples
//! land in bucket 0 and everything past the last bucket clamps into
//! it.

use std::time::Duration;

/// Number of log2 buckets in a [`Histogram`] — for latencies bucket 31
/// tops out above half an hour, far past any optimization deadline;
/// for Q-errors it tops out past 2 × 10⁶, far past any useful
/// estimate.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A sample type a [`Histogram`] can bucket: values map monotonically
/// onto an integer tick axis, sum exactly, and divide for the mean.
pub trait HistogramSample: Copy + Default + PartialOrd {
    /// Map the sample onto the tick axis (µs for durations, 1/1024ths
    /// for ratios). Must be monotonic.
    fn to_ticks(self) -> u64;
    /// Inverse of [`HistogramSample::to_ticks`], used to render bucket
    /// upper bounds.
    fn from_ticks(ticks: u64) -> Self;
    /// Sum for the running `total`. Must be exactly commutative and
    /// associative, so totals are bit-identical regardless of
    /// ingestion or merge order (integer-backed types sum natively;
    /// floats must accumulate in tick space).
    fn sum(self, other: Self) -> Self;
    /// `total / count`, for the mean.
    fn div_by(self, count: u64) -> Self;
}

impl HistogramSample for Duration {
    fn to_ticks(self) -> u64 {
        self.as_micros() as u64
    }

    fn from_ticks(ticks: u64) -> Self {
        Duration::from_micros(ticks)
    }

    fn sum(self, other: Self) -> Self {
        self + other
    }

    fn div_by(self, count: u64) -> Self {
        self / count as u32
    }
}

/// Q-error ratios are dimensionless `f64`s ≥ 1; 10 fractional bits of
/// fixed point keep the bucket edges fine enough that a perfect
/// estimate (q = 1) and a 2× miss land ten buckets apart.
impl HistogramSample for f64 {
    fn to_ticks(self) -> u64 {
        if self <= 0.0 {
            0
        } else {
            (self * 1024.0) as u64
        }
    }

    fn from_ticks(ticks: u64) -> Self {
        ticks as f64 / 1024.0
    }

    /// Accumulate in tick space: integer addition is exactly
    /// associative, where a raw `f64` running sum drifts in the last
    /// bits depending on ingestion order. Both operands are dyadic
    /// multiples of 2⁻¹⁰ after the first fold, so the round trip
    /// through ticks is lossless past the initial ≤ 1/1024
    /// quantization per sample.
    fn sum(self, other: Self) -> Self {
        Self::from_ticks(self.to_ticks() + other.to_ticks())
    }

    fn div_by(self, count: u64) -> Self {
        self / count as f64
    }
}

/// A log2 histogram over any [`HistogramSample`]: bucket `i` counts
/// samples whose tick value has `floor(log2(ticks)) == i` (sub-tick
/// samples land in bucket 0; everything past the last bucket clamps
/// into it).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram<T> {
    /// Per-bucket sample counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub total: T,
    /// Largest sample.
    pub max: T,
}

impl<T: HistogramSample + Eq> Eq for Histogram<T> {}

impl<T: HistogramSample> Default for Histogram<T> {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total: T::default(),
            max: T::default(),
        }
    }
}

impl<T: HistogramSample> Histogram<T> {
    /// The bucket index a sample falls into.
    pub fn bucket_for(sample: T) -> usize {
        let ticks = sample.to_ticks().max(1);
        ((63 - ticks.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`2^(i+1) − 1` ticks).
    pub fn bucket_upper_bound(i: usize) -> T {
        T::from_ticks((1u64 << (i + 1)) - 1)
    }

    /// Fold in one sample.
    pub fn record(&mut self, sample: T) {
        self.buckets[Self::bucket_for(sample)] += 1;
        self.count += 1;
        self.total = self.total.sum(sample);
        if sample > self.max {
            self.max = sample;
        }
    }

    /// Mean sample (zero when empty).
    pub fn mean(&self) -> T {
        if self.count == 0 {
            T::default()
        } else {
            self.total.div_by(self.count)
        }
    }

    /// The sample at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `ceil(q·count)`-th smallest sample,
    /// clamped to the observed maximum so a sparse top bucket cannot
    /// inflate the estimate past anything actually seen. Zero when
    /// empty.
    pub fn quantile(&self, q: f64) -> T {
        if self.count == 0 {
            return T::default();
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let bound = Self::bucket_upper_bound(i);
                return if bound > self.max { self.max } else { bound };
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> T {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> T {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> T {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one (bucket-wise sum; `max`
    /// and `total` combine exactly). Merging is associative and
    /// commutative, so per-shard histograms can be combined in any
    /// order.
    pub fn merge(&mut self, other: &Histogram<T>) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.total = self.total.sum(other.total);
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// The populated buckets, as `(upper_bound, count)` pairs in
    /// ascending order — what `sdp-service replay` prints.
    pub fn nonzero_buckets(&self) -> Vec<(T, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_upper_bound(i), n))
            .collect()
    }
}

/// A log2 latency histogram over microsecond ticks — the shape the
/// per-rung tables and the Prometheus exposition were built on.
pub type LatencyHistogram = Histogram<Duration>;

/// A log2 Q-error histogram over 1/1024th ticks: bucket 10's upper
/// edge sits just under q = 2, so "within 2× of the true cardinality"
/// is everything at or below it.
pub type QErrorHistogram = Histogram<f64>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qerror_buckets_split_at_powers_of_two() {
        // q = 1.0 is 1024 ticks → bucket 10; q just under 2 stays
        // there; q = 2.0 crosses into bucket 11.
        assert_eq!(QErrorHistogram::bucket_for(1.0), 10);
        assert_eq!(QErrorHistogram::bucket_for(1.99), 10);
        assert_eq!(QErrorHistogram::bucket_for(2.0), 11);
        assert_eq!(QErrorHistogram::bucket_for(4.0), 12);
        // Sub-tick and non-finite-adjacent inputs clamp to bucket 0.
        assert_eq!(QErrorHistogram::bucket_for(0.0), 0);
    }

    #[test]
    fn qerror_histogram_tracks_mean_max_and_quantiles() {
        let mut h = QErrorHistogram::default();
        for q in [1.0, 1.0, 1.0, 2.0, 8.0] {
            h.record(q);
        }
        assert_eq!(h.count, 5);
        assert!((h.mean() - 2.6).abs() < 1e-9);
        assert_eq!(h.max, 8.0);
        // p50 falls in bucket 10 (upper bound ~2), clamped by nothing.
        assert!(h.p50() <= 2.0);
        // p99 clamps to the observed max.
        assert_eq!(h.p99(), 8.0);
    }

    #[test]
    fn qerror_merge_is_commutative() {
        let mut a = QErrorHistogram::default();
        let mut b = QErrorHistogram::default();
        for q in [1.0, 3.5, 100.0] {
            a.record(q);
        }
        for q in [2.0, 2.0] {
            b.record(q);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.buckets, ba.buckets);
        assert_eq!(ab.count, ba.count);
        assert_eq!(ab.max, ba.max);
    }

    #[test]
    fn duration_alias_keeps_original_bucket_math() {
        assert_eq!(LatencyHistogram::bucket_for(Duration::ZERO), 0);
        assert_eq!(LatencyHistogram::bucket_for(Duration::from_micros(1)), 0);
        assert_eq!(LatencyHistogram::bucket_for(Duration::from_micros(2)), 1);
        assert_eq!(
            LatencyHistogram::bucket_upper_bound(3),
            Duration::from_micros(15)
        );
    }
}
