//! Durable-store observability: counters for the write-behind plan
//! store, epoch-checked warm restart, and the dead-letter queue.
//!
//! Same discipline as [`crate::service`]: relaxed atomics bumped off
//! the request hot path (store writes happen on the write-behind
//! thread, DLQ writes on a failure path that just lost an entire
//! enumeration, warm fills at startup). `dlq_depth` is a gauge — it
//! moves both ways as records are enqueued and drained.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters (plus the `dlq_depth` gauge) for one durable
/// plan store.
#[derive(Debug, Default)]
pub struct StoreCounters {
    writes: AtomicU64,
    write_errors: AtomicU64,
    warm_fills: AtomicU64,
    warm_hits: AtomicU64,
    stale_dropped: AtomicU64,
    torn_truncations: AtomicU64,
    compactions: AtomicU64,
    dlq_enqueued: AtomicU64,
    dlq_drained: AtomicU64,
    dlq_depth: AtomicU64,
}

impl StoreCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        StoreCounters::default()
    }

    /// A plan record was appended to the segment log.
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// A segment append failed (I/O error); the plan stays cached in
    /// memory but is lost to the persistent tier.
    pub fn record_write_error(&self) {
        self.write_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A recovered record pre-populated the in-memory cache at
    /// startup.
    pub fn record_warm_fill(&self) {
        self.warm_fills.fetch_add(1, Ordering::Relaxed);
    }

    /// A request hit a cache entry that came from the persistent tier
    /// rather than an enumeration in this process lifetime.
    pub fn record_warm_hit(&self) {
        self.warm_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A recovered record was dropped because its statistics epoch no
    /// longer matches the catalog.
    pub fn record_stale_dropped(&self) {
        self.stale_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// A torn tail (partial or corrupt trailing record) was truncated
    /// during recovery.
    pub fn record_torn_truncation(&self) {
        self.torn_truncations.fetch_add(1, Ordering::Relaxed);
    }

    /// A segment compaction ran (live records rewritten, old segments
    /// deleted).
    pub fn record_compaction(&self) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// A failed request was serialized into the dead-letter queue.
    pub fn record_dlq_enqueued(&self) {
        self.dlq_enqueued.fetch_add(1, Ordering::Relaxed);
        self.dlq_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` dead-letter records were drained (re-optimized and
    /// removed).
    pub fn add_dlq_drained(&self, n: u64) {
        self.dlq_drained.fetch_add(n, Ordering::Relaxed);
        let mut depth = self.dlq_depth.load(Ordering::Relaxed);
        loop {
            let next = depth.saturating_sub(n);
            match self.dlq_depth.compare_exchange_weak(
                depth,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => depth = observed,
            }
        }
    }

    /// Set the `dlq_depth` gauge outright (recovery knows the exact
    /// number of live records).
    pub fn set_dlq_depth(&self, depth: u64) {
        self.dlq_depth.store(depth, Ordering::Relaxed);
    }

    /// Current dead-letter queue depth.
    pub fn dlq_depth(&self) -> u64 {
        self.dlq_depth.load(Ordering::Relaxed)
    }

    /// Consistent-enough snapshot of all counters (each counter is
    /// read atomically; the set is not a single atomic transaction).
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            warm_fills: self.warm_fills.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            stale_dropped: self.stale_dropped.load(Ordering::Relaxed),
            torn_truncations: self.torn_truncations.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            dlq_enqueued: self.dlq_enqueued.load(Ordering::Relaxed),
            dlq_drained: self.dlq_drained.load(Ordering::Relaxed),
            dlq_depth: self.dlq_depth.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`StoreCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Plan records appended to the segment log.
    pub writes: u64,
    /// Segment appends that failed with an I/O error.
    pub write_errors: u64,
    /// Recovered records that pre-populated the cache at startup.
    pub warm_fills: u64,
    /// Cache hits served by entries from the persistent tier.
    pub warm_hits: u64,
    /// Recovered records dropped for a stale statistics epoch.
    pub stale_dropped: u64,
    /// Torn tails truncated during recovery.
    pub torn_truncations: u64,
    /// Segment compactions run.
    pub compactions: u64,
    /// Requests serialized into the dead-letter queue.
    pub dlq_enqueued: u64,
    /// Dead-letter records drained.
    pub dlq_drained: u64,
    /// Dead-letter records currently live (gauge).
    pub dlq_depth: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = StoreCounters::new();
        c.record_write();
        c.record_write();
        c.record_warm_fill();
        c.record_warm_hit();
        c.record_stale_dropped();
        c.record_torn_truncation();
        c.record_compaction();
        let snap = c.snapshot();
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.warm_fills, 1);
        assert_eq!(snap.warm_hits, 1);
        assert_eq!(snap.stale_dropped, 1);
        assert_eq!(snap.torn_truncations, 1);
        assert_eq!(snap.compactions, 1);
    }

    #[test]
    fn dlq_depth_moves_both_ways_and_saturates() {
        let c = StoreCounters::new();
        c.record_dlq_enqueued();
        c.record_dlq_enqueued();
        assert_eq!(c.dlq_depth(), 2);
        c.add_dlq_drained(1);
        assert_eq!(c.dlq_depth(), 1);
        c.add_dlq_drained(5);
        assert_eq!(c.dlq_depth(), 0, "depth saturates at zero");
        let snap = c.snapshot();
        assert_eq!(snap.dlq_enqueued, 2);
        assert_eq!(snap.dlq_drained, 6);
    }

    #[test]
    fn set_depth_overrides_the_gauge() {
        let c = StoreCounters::new();
        c.set_dlq_depth(7);
        assert_eq!(c.dlq_depth(), 7);
    }
}
