//! Plan-quality classification (I/G/A/B), worst-case ratio and the
//! geometric-mean plan-quality factor ρ.

use std::fmt;

/// The paper's plan-quality classes for a cost ratio `r =
/// cost(plan) / cost(reference)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QualityClass {
    /// "the recommended plan is either identical to that produced by
    /// DP, or within 1 % of this optimal".
    Ideal,
    /// Within a factor of two of the optimal (Kossmann's "good").
    Good,
    /// Within an order of magnitude of the optimal.
    Acceptable,
    /// Beyond an order of magnitude.
    Bad,
}

impl QualityClass {
    /// Classify a cost ratio.
    ///
    /// # Panics
    /// Panics if `ratio` is not finite or is below 1 − 1e-6 (a plan
    /// cannot beat the optimal reference by more than rounding).
    pub fn classify(ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio > 1.0 - 1e-6,
            "invalid plan-cost ratio {ratio}"
        );
        if ratio <= 1.01 {
            QualityClass::Ideal
        } else if ratio <= 2.0 {
            QualityClass::Good
        } else if ratio <= 10.0 {
            QualityClass::Acceptable
        } else {
            QualityClass::Bad
        }
    }

    /// One-letter label used in the paper's table headers.
    pub fn letter(self) -> char {
        match self {
            QualityClass::Ideal => 'I',
            QualityClass::Good => 'G',
            QualityClass::Acceptable => 'A',
            QualityClass::Bad => 'B',
        }
    }
}

impl fmt::Display for QualityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Geometric mean of a set of cost ratios — the paper's ρ.
///
/// Computed in log space for numerical stability. Returns 1.0 for an
/// empty input (the DP-versus-itself row).
pub fn geometric_mean_ratio(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    let ln_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
    (ln_sum / ratios.len() as f64).exp()
}

/// Aggregated plan quality over a query set: one row of the paper's
/// quality tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualitySummary {
    /// Number of queries aggregated.
    pub queries: usize,
    /// Percentage classified Ideal.
    pub ideal_pct: f64,
    /// Percentage classified Good (but not Ideal).
    pub good_pct: f64,
    /// Percentage classified Acceptable.
    pub acceptable_pct: f64,
    /// Percentage classified Bad.
    pub bad_pct: f64,
    /// Worst-case ratio W.
    pub worst: f64,
    /// Plan-quality factor ρ (geometric mean of ratios).
    pub rho: f64,
}

impl QualitySummary {
    /// Summarize a set of cost ratios.
    ///
    /// # Panics
    /// Panics when `ratios` is empty — an empty experiment row is a
    /// harness bug, not a legitimate table entry.
    pub fn from_ratios(ratios: &[f64]) -> Self {
        assert!(!ratios.is_empty(), "no ratios to summarize");
        let n = ratios.len() as f64;
        let mut counts = [0usize; 4];
        let mut worst = f64::MIN;
        for &r in ratios {
            let class = QualityClass::classify(r);
            let idx = match class {
                QualityClass::Ideal => 0,
                QualityClass::Good => 1,
                QualityClass::Acceptable => 2,
                QualityClass::Bad => 3,
            };
            counts[idx] += 1;
            worst = worst.max(r);
        }
        QualitySummary {
            queries: ratios.len(),
            ideal_pct: 100.0 * counts[0] as f64 / n,
            good_pct: 100.0 * counts[1] as f64 / n,
            acceptable_pct: 100.0 * counts[2] as f64 / n,
            bad_pct: 100.0 * counts[3] as f64 / n,
            worst,
            rho: geometric_mean_ratio(ratios),
        }
    }

    /// The reference row (DP against itself): 100 % ideal.
    pub fn reference(queries: usize) -> Self {
        QualitySummary {
            queries,
            ideal_pct: 100.0,
            good_pct: 0.0,
            acceptable_pct: 0.0,
            bad_pct: 0.0,
            worst: 1.0,
            rho: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_thresholds_match_paper() {
        assert_eq!(QualityClass::classify(1.0), QualityClass::Ideal);
        assert_eq!(QualityClass::classify(1.01), QualityClass::Ideal);
        assert_eq!(QualityClass::classify(1.02), QualityClass::Good);
        assert_eq!(QualityClass::classify(2.0), QualityClass::Good);
        assert_eq!(QualityClass::classify(2.001), QualityClass::Acceptable);
        assert_eq!(QualityClass::classify(10.0), QualityClass::Acceptable);
        assert_eq!(QualityClass::classify(10.5), QualityClass::Bad);
    }

    #[test]
    fn letters_for_table_headers() {
        assert_eq!(QualityClass::Ideal.letter(), 'I');
        assert_eq!(QualityClass::Bad.to_string(), "B");
    }

    #[test]
    #[should_panic(expected = "invalid plan-cost ratio")]
    fn sub_optimal_ratio_rejected() {
        let _ = QualityClass::classify(0.5);
    }

    #[test]
    fn rounding_noise_below_one_tolerated() {
        assert_eq!(QualityClass::classify(1.0 - 1e-9), QualityClass::Ideal);
    }

    #[test]
    fn geometric_mean_examples() {
        assert_eq!(geometric_mean_ratio(&[]), 1.0);
        assert!((geometric_mean_ratio(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean_ratio(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // Geometric mean is dominated less by outliers than the
        // arithmetic mean.
        let g = geometric_mean_ratio(&[1.0, 1.0, 1.0, 11.0]);
        assert!(g < 2.0);
    }

    #[test]
    fn summary_percentages_sum_to_hundred() {
        let ratios = [1.0, 1.005, 1.5, 3.0, 12.0, 1.0];
        let s = QualitySummary::from_ratios(&ratios);
        let total = s.ideal_pct + s.good_pct + s.acceptable_pct + s.bad_pct;
        assert!((total - 100.0).abs() < 1e-9);
        assert_eq!(s.queries, 6);
        assert_eq!(s.worst, 12.0);
        assert_eq!(s.ideal_pct, 50.0);
    }

    #[test]
    fn reference_row_is_all_ideal() {
        let s = QualitySummary::reference(100);
        assert_eq!(s.ideal_pct, 100.0);
        assert_eq!(s.rho, 1.0);
        assert_eq!(s.worst, 1.0);
    }

    #[test]
    #[should_panic(expected = "no ratios")]
    fn empty_summary_rejected() {
        let _ = QualitySummary::from_ratios(&[]);
    }
}
