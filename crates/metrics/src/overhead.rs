//! Optimization-overhead aggregation: the paper's Memory / Time /
//! Costing columns.

use std::time::Duration;

/// One optimization run's overheads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadSample {
    /// Peak memory (model bytes).
    pub memory_bytes: u64,
    /// Wall-clock optimization time.
    pub elapsed: Duration,
    /// Plans costed.
    pub plans_costed: u64,
}

/// Mean overheads over a query set — one row of the paper's overhead
/// tables (the paper reports per-query averages).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverheadSummary {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Mean peak memory, in megabytes.
    pub memory_mb: f64,
    /// Mean optimization time, in seconds.
    pub time_s: f64,
    /// Mean plans costed.
    pub plans_costed: f64,
}

impl OverheadSummary {
    /// Aggregate samples into per-query means.
    pub fn from_samples(samples: &[OverheadSample]) -> Self {
        if samples.is_empty() {
            return OverheadSummary::default();
        }
        let n = samples.len() as f64;
        OverheadSummary {
            runs: samples.len(),
            memory_mb: samples.iter().map(|s| s.memory_bytes as f64).sum::<f64>()
                / n
                / (1024.0 * 1024.0),
            time_s: samples.iter().map(|s| s.elapsed.as_secs_f64()).sum::<f64>() / n,
            plans_costed: samples.iter().map(|s| s.plans_costed as f64).sum::<f64>() / n,
        }
    }

    /// Format the plans-costed column in the paper's scientific style
    /// (e.g. `8.3E5`).
    pub fn plans_costed_sci(&self) -> String {
        sci(self.plans_costed)
    }
}

/// Render a number as the paper's compact scientific notation.
pub fn sci(v: f64) -> String {
    if v <= 0.0 {
        return "0".into();
    }
    let exp = v.abs().log10().floor() as i32;
    let mantissa = v / 10f64.powi(exp);
    format!("{mantissa:.1}E{exp}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_are_correct() {
        let samples = [
            OverheadSample {
                memory_bytes: 2 * 1024 * 1024,
                elapsed: Duration::from_millis(100),
                plans_costed: 1000,
            },
            OverheadSample {
                memory_bytes: 4 * 1024 * 1024,
                elapsed: Duration::from_millis(300),
                plans_costed: 3000,
            },
        ];
        let s = OverheadSummary::from_samples(&samples);
        assert_eq!(s.runs, 2);
        assert!((s.memory_mb - 3.0).abs() < 1e-9);
        assert!((s.time_s - 0.2).abs() < 1e-9);
        assert!((s.plans_costed - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = OverheadSummary::from_samples(&[]);
        assert_eq!(s.runs, 0);
        assert_eq!(s.memory_mb, 0.0);
    }

    #[test]
    fn scientific_format_matches_paper_style() {
        assert_eq!(sci(830_000.0), "8.3E5");
        assert_eq!(sci(50_000.0), "5.0E4");
        assert_eq!(sci(4_500_000.0), "4.5E6");
        assert_eq!(sci(0.0), "0");
    }
}
