//! Metrics exposition: one snapshot struct, two wire formats.
//!
//! [`MetricsReport`] bundles every observability surface the daemon
//! owns — request counters, governor ladder counters, per-strategy
//! latency aggregates, per-rung latency histograms, allocator
//! watermarks, cache occupancy — into a plain value that renders as
//! either Prometheus text exposition format ([`MetricsReport::
//! prometheus_text`]) or a single JSON document
//! ([`MetricsReport::to_json`], what `sdp-service replay
//! --metrics-json` writes). Both renderers are hand-rolled: the
//! formats are trivial and the workspace takes no serialization
//! dependency for them.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use crate::alloc::AllocSnapshot;
use crate::histogram::QErrorHistogram;
use crate::service::{
    CountersSnapshot, GovernorSnapshot, LatencyHistogram, LatencyStats, OverloadSnapshot,
};
use crate::store::StoreSnapshot;

/// Version stamped into [`MetricsReport::to_json`] as the leading
/// `"schema"` field. Bumped whenever the document shape changes so
/// inspect tooling and replay smoke scripts can reject incompatible
/// documents instead of mis-parsing them. Version 1 was the implicit,
/// unstamped PR 5 shape; version 2 added the stamp itself and the
/// `qerror` family.
pub const METRICS_SCHEMA_VERSION: u32 = 2;

/// Point-in-time bundle of every metric family the service exposes.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// Request/cache counters.
    pub counters: CountersSnapshot,
    /// Governor degradation-ladder counters.
    pub governor: GovernorSnapshot,
    /// Per-strategy latency aggregates, keyed by requested-strategy
    /// label.
    pub strategies: BTreeMap<String, LatencyStats>,
    /// Per-rung latency histograms, keyed by the label of the rung
    /// that produced the plan.
    pub rungs: BTreeMap<String, LatencyHistogram>,
    /// Process allocator watermarks (zeros when the counting allocator
    /// is not installed).
    pub alloc: AllocSnapshot,
    /// Durable plan-store counters (zeros when no store is attached).
    pub store: StoreSnapshot,
    /// Overload-control counters and occupancy gauges (sheds, stale
    /// serves, circuit breaker, queue depth, in-flight).
    pub overload: OverloadSnapshot,
    /// Cardinality-accuracy (Q-error) histograms keyed by series label
    /// (`node:<kind>` for per-node-kind aggregates, `pred:<display>`
    /// for per-predicate aggregates). Empty unless an instrumented
    /// execution pass ran.
    pub qerror: BTreeMap<String, QErrorHistogram>,
    /// Plans currently resident in the cache.
    pub cached_plans: u64,
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

impl MetricsReport {
    /// Render as Prometheus text exposition format (version 0.0.4):
    /// `# HELP`/`# TYPE` headers, counters suffixed `_total`,
    /// histograms as cumulative `_bucket{le=...}` series ending in
    /// `+Inf`, durations in seconds.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let c = &self.counters;
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "sdp_cache_hits_total",
            "Requests served from the plan cache.",
            c.hits,
        );
        counter(
            "sdp_cache_misses_total",
            "Requests that led an enumeration.",
            c.misses,
        );
        counter(
            "sdp_coalesced_total",
            "Requests coalesced onto an in-flight enumeration.",
            c.coalesced,
        );
        counter(
            "sdp_cache_evicted_total",
            "Cache entries evicted by LRU capacity pressure.",
            c.evicted,
        );
        counter(
            "sdp_cache_stale_evicted_total",
            "Cache entries invalidated by statistics-epoch changes.",
            c.stale_evicted,
        );
        counter(
            "sdp_enumerations_total",
            "Optimizer enumerations actually run.",
            c.enumerations,
        );
        counter(
            "sdp_plans_costed_total",
            "Plan alternatives costed across all enumerations.",
            c.plans_costed,
        );
        let g = &self.governor;
        counter(
            "sdp_degradations_total",
            "Governor ladder descents taken.",
            g.degradations,
        );
        counter(
            "sdp_degradations_deadline_total",
            "Descents caused by an expired deadline slice.",
            g.deadline_degradations,
        );
        counter(
            "sdp_degradations_memory_total",
            "Descents caused by the memory budget.",
            g.memory_degradations,
        );
        counter(
            "sdp_degradations_cancel_total",
            "Jumps to the bottom rung on caller cancellation.",
            g.cancel_degradations,
        );
        counter(
            "sdp_timeouts_total",
            "Requests that failed outright on a deadline error.",
            g.timeouts,
        );
        counter(
            "sdp_leader_retries_total",
            "Panicking single-flight leaders retried on a cheaper rung.",
            g.leader_retries,
        );
        let s = &self.store;
        counter(
            "sdp_store_writes_total",
            "Plan records appended to the durable store.",
            s.writes,
        );
        counter(
            "sdp_store_write_errors_total",
            "Durable-store appends that failed with an I/O error.",
            s.write_errors,
        );
        counter(
            "sdp_store_warm_fills_total",
            "Recovered records that pre-populated the cache at startup.",
            s.warm_fills,
        );
        counter(
            "sdp_store_warm_hits_total",
            "Cache hits served by entries from the persistent tier.",
            s.warm_hits,
        );
        counter(
            "sdp_store_stale_dropped_total",
            "Recovered records dropped for a stale statistics epoch.",
            s.stale_dropped,
        );
        counter(
            "sdp_store_torn_truncations_total",
            "Torn segment tails truncated during recovery.",
            s.torn_truncations,
        );
        counter(
            "sdp_store_compactions_total",
            "Segment compactions run.",
            s.compactions,
        );
        counter(
            "sdp_dlq_enqueued_total",
            "Failed requests serialized into the dead-letter queue.",
            s.dlq_enqueued,
        );
        counter(
            "sdp_dlq_drained_total",
            "Dead-letter records re-optimized and removed.",
            s.dlq_drained,
        );
        let o = &self.overload;
        counter(
            "sdp_shed_queue_full_total",
            "Requests rejected at submit because the admission queue was full.",
            o.shed_queue_full,
        );
        counter(
            "sdp_shed_deadline_total",
            "Dequeued requests dropped for an already-expired deadline.",
            o.shed_deadline,
        );
        counter(
            "sdp_served_stale_total",
            "Requests answered with an epoch-stale plan under admission pressure.",
            o.served_stale,
        );
        counter(
            "sdp_breaker_trips_total",
            "Per-fingerprint circuit breakers opened.",
            o.breaker_trips,
        );
        counter(
            "sdp_breaker_rejections_total",
            "Arrivals rejected fast by an open circuit breaker.",
            o.breaker_rejections,
        );
        counter(
            "sdp_breaker_probes_total",
            "Arrivals admitted through an open breaker as half-open probes.",
            o.breaker_probes,
        );
        counter(
            "sdp_breaker_recoveries_total",
            "Half-open probes that succeeded and closed their breaker.",
            o.breaker_recoveries,
        );
        let mut gauge = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(
            "sdp_cached_plans",
            "Plans currently resident in the cache.",
            self.cached_plans,
        );
        gauge(
            "sdp_alloc_live_bytes",
            "Bytes currently allocated by the process.",
            self.alloc.live,
        );
        gauge(
            "sdp_alloc_peak_bytes",
            "Peak allocated bytes since the last reset.",
            self.alloc.peak,
        );
        gauge(
            "sdp_dlq_depth",
            "Dead-letter records currently live.",
            s.dlq_depth,
        );
        gauge(
            "sdp_queue_depth",
            "Requests currently waiting in the admission queue.",
            o.queue_depth,
        );
        gauge(
            "sdp_queue_depth_high_water",
            "High-water admission-queue depth.",
            o.queue_depth_hwm,
        );
        gauge(
            "sdp_inflight",
            "Requests currently being optimized by workers.",
            o.inflight,
        );
        gauge(
            "sdp_inflight_high_water",
            "High-water in-flight request count.",
            o.inflight_hwm,
        );

        if !self.strategies.is_empty() {
            let _ = writeln!(
                out,
                "# HELP sdp_strategy_latency_seconds Enumeration latency by requested strategy."
            );
            let _ = writeln!(out, "# TYPE sdp_strategy_latency_seconds summary");
            for (label, stats) in &self.strategies {
                let _ = writeln!(
                    out,
                    "sdp_strategy_latency_seconds_sum{{strategy=\"{label}\"}} {}",
                    secs(stats.total)
                );
                let _ = writeln!(
                    out,
                    "sdp_strategy_latency_seconds_count{{strategy=\"{label}\"}} {}",
                    stats.count
                );
                let _ = writeln!(
                    out,
                    "sdp_strategy_latency_seconds_max{{strategy=\"{label}\"}} {}",
                    secs(stats.max)
                );
            }
        }

        if !self.rungs.is_empty() {
            let _ = writeln!(
                out,
                "# HELP sdp_rung_latency_seconds Governed latency by producing rung."
            );
            let _ = writeln!(out, "# TYPE sdp_rung_latency_seconds histogram");
            for (label, h) in &self.rungs {
                let mut cumulative = 0u64;
                for (upper, n) in h.nonzero_buckets() {
                    cumulative += n;
                    let _ = writeln!(
                        out,
                        "sdp_rung_latency_seconds_bucket{{rung=\"{label}\",le=\"{}\"}} {cumulative}",
                        secs(upper)
                    );
                }
                let _ = writeln!(
                    out,
                    "sdp_rung_latency_seconds_bucket{{rung=\"{label}\",le=\"+Inf\"}} {}",
                    h.count
                );
                let _ = writeln!(
                    out,
                    "sdp_rung_latency_seconds_sum{{rung=\"{label}\"}} {}",
                    secs(h.total)
                );
                let _ = writeln!(
                    out,
                    "sdp_rung_latency_seconds_count{{rung=\"{label}\"}} {}",
                    h.count
                );
            }
        }

        if !self.qerror.is_empty() {
            let _ = writeln!(
                out,
                "# HELP sdp_qerror Cardinality Q-error by plan-node series."
            );
            let _ = writeln!(out, "# TYPE sdp_qerror histogram");
            for (label, h) in &self.qerror {
                let mut cumulative = 0u64;
                for (upper, n) in h.nonzero_buckets() {
                    cumulative += n;
                    let _ = writeln!(
                        out,
                        "sdp_qerror_bucket{{series=\"{label}\",le=\"{upper:.6}\"}} {cumulative}"
                    );
                }
                let _ = writeln!(
                    out,
                    "sdp_qerror_bucket{{series=\"{label}\",le=\"+Inf\"}} {}",
                    h.count
                );
                let _ = writeln!(out, "sdp_qerror_sum{{series=\"{label}\"}} {:.6}", h.total);
                let _ = writeln!(out, "sdp_qerror_count{{series=\"{label}\"}} {}", h.count);
            }
        }
        out
    }

    /// Render as one pretty-printed JSON document: counter and
    /// governor tables verbatim, strategy aggregates and rung
    /// histograms (with p50/p95/p99 extracted) keyed by label,
    /// durations in microseconds.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let c = &self.counters;
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {METRICS_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"counters\": {{");
        let _ = writeln!(out, "    \"hits\": {},", c.hits);
        let _ = writeln!(out, "    \"misses\": {},", c.misses);
        let _ = writeln!(out, "    \"coalesced\": {},", c.coalesced);
        let _ = writeln!(out, "    \"evicted\": {},", c.evicted);
        let _ = writeln!(out, "    \"stale_evicted\": {},", c.stale_evicted);
        let _ = writeln!(out, "    \"enumerations\": {},", c.enumerations);
        let _ = writeln!(out, "    \"plans_costed\": {},", c.plans_costed);
        let _ = writeln!(out, "    \"requests\": {}", c.requests());
        let _ = writeln!(out, "  }},");
        let g = &self.governor;
        let _ = writeln!(out, "  \"governor\": {{");
        let _ = writeln!(out, "    \"degradations\": {},", g.degradations);
        let _ = writeln!(
            out,
            "    \"deadline_degradations\": {},",
            g.deadline_degradations
        );
        let _ = writeln!(
            out,
            "    \"memory_degradations\": {},",
            g.memory_degradations
        );
        let _ = writeln!(
            out,
            "    \"cancel_degradations\": {},",
            g.cancel_degradations
        );
        let _ = writeln!(out, "    \"timeouts\": {},", g.timeouts);
        let _ = writeln!(out, "    \"leader_retries\": {}", g.leader_retries);
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"strategies\": {{");
        let n = self.strategies.len();
        for (i, (label, s)) in self.strategies.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(
                out,
                "    \"{label}\": {{\"count\": {}, \"mean_micros\": {}, \"max_micros\": {}}}{comma}",
                s.count,
                s.mean().as_micros(),
                s.max.as_micros()
            );
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"rungs\": {{");
        let n = self.rungs.len();
        for (i, (label, h)) in self.rungs.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(out, "    \"{label}\": {{");
            let _ = writeln!(out, "      \"count\": {},", h.count);
            let _ = writeln!(out, "      \"mean_micros\": {},", h.mean().as_micros());
            let _ = writeln!(out, "      \"p50_micros\": {},", h.p50().as_micros());
            let _ = writeln!(out, "      \"p95_micros\": {},", h.p95().as_micros());
            let _ = writeln!(out, "      \"p99_micros\": {},", h.p99().as_micros());
            let _ = writeln!(out, "      \"max_micros\": {},", h.max.as_micros());
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .iter()
                .map(|(upper, count)| format!("[{}, {count}]", upper.as_micros()))
                .collect();
            let _ = writeln!(out, "      \"buckets\": [{}]", buckets.join(", "));
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"qerror\": {{");
        let n = self.qerror.len();
        for (i, (label, h)) in self.qerror.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(out, "    \"{label}\": {{");
            let _ = writeln!(out, "      \"count\": {},", h.count);
            let _ = writeln!(out, "      \"mean\": {:.4},", h.mean());
            let _ = writeln!(out, "      \"p50\": {:.4},", h.p50());
            let _ = writeln!(out, "      \"p95\": {:.4},", h.p95());
            let _ = writeln!(out, "      \"p99\": {:.4},", h.p99());
            let _ = writeln!(out, "      \"max\": {:.4},", h.max);
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .iter()
                .map(|(upper, count)| format!("[{upper:.4}, {count}]"))
                .collect();
            let _ = writeln!(out, "      \"buckets\": [{}]", buckets.join(", "));
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"alloc\": {{");
        let _ = writeln!(out, "    \"live_bytes\": {},", self.alloc.live);
        let _ = writeln!(out, "    \"peak_bytes\": {}", self.alloc.peak);
        let _ = writeln!(out, "  }},");
        let s = &self.store;
        let _ = writeln!(out, "  \"store\": {{");
        let _ = writeln!(out, "    \"writes\": {},", s.writes);
        let _ = writeln!(out, "    \"write_errors\": {},", s.write_errors);
        let _ = writeln!(out, "    \"warm_fills\": {},", s.warm_fills);
        let _ = writeln!(out, "    \"warm_hits\": {},", s.warm_hits);
        let _ = writeln!(out, "    \"stale_dropped\": {},", s.stale_dropped);
        let _ = writeln!(out, "    \"torn_truncations\": {},", s.torn_truncations);
        let _ = writeln!(out, "    \"compactions\": {},", s.compactions);
        let _ = writeln!(out, "    \"dlq_enqueued\": {},", s.dlq_enqueued);
        let _ = writeln!(out, "    \"dlq_drained\": {},", s.dlq_drained);
        let _ = writeln!(out, "    \"dlq_depth\": {}", s.dlq_depth);
        let _ = writeln!(out, "  }},");
        let o = &self.overload;
        let _ = writeln!(out, "  \"overload\": {{");
        let _ = writeln!(out, "    \"shed_queue_full\": {},", o.shed_queue_full);
        let _ = writeln!(out, "    \"shed_deadline\": {},", o.shed_deadline);
        let _ = writeln!(out, "    \"served_stale\": {},", o.served_stale);
        let _ = writeln!(out, "    \"breaker_trips\": {},", o.breaker_trips);
        let _ = writeln!(out, "    \"breaker_rejections\": {},", o.breaker_rejections);
        let _ = writeln!(out, "    \"breaker_probes\": {},", o.breaker_probes);
        let _ = writeln!(out, "    \"breaker_recoveries\": {},", o.breaker_recoveries);
        let _ = writeln!(out, "    \"queue_depth\": {},", o.queue_depth);
        let _ = writeln!(out, "    \"queue_depth_hwm\": {},", o.queue_depth_hwm);
        let _ = writeln!(out, "    \"inflight\": {},", o.inflight);
        let _ = writeln!(out, "    \"inflight_hwm\": {}", o.inflight_hwm);
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"cached_plans\": {}", self.cached_plans);
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> MetricsReport {
        let mut report = MetricsReport {
            counters: CountersSnapshot {
                hits: 5,
                misses: 2,
                coalesced: 1,
                evicted: 0,
                stale_evicted: 0,
                enumerations: 2,
                plans_costed: 1234,
            },
            governor: GovernorSnapshot {
                degradations: 1,
                memory_degradations: 1,
                ..Default::default()
            },
            alloc: AllocSnapshot {
                live: 1 << 20,
                peak: 1 << 21,
            },
            store: StoreSnapshot {
                writes: 4,
                warm_fills: 3,
                warm_hits: 2,
                dlq_enqueued: 1,
                dlq_depth: 1,
                ..Default::default()
            },
            overload: OverloadSnapshot {
                shed_queue_full: 7,
                shed_deadline: 2,
                served_stale: 3,
                breaker_trips: 1,
                breaker_rejections: 4,
                breaker_probes: 2,
                breaker_recoveries: 1,
                queue_depth: 0,
                queue_depth_hwm: 9,
                inflight: 1,
                inflight_hwm: 4,
            },
            cached_plans: 2,
            ..Default::default()
        };
        let mut stats = LatencyStats::default();
        stats.record(Duration::from_millis(4));
        stats.record(Duration::from_millis(8));
        report.strategies.insert("SDP".to_string(), stats);
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_micros(700));
        h.record(Duration::from_micros(800));
        h.record(Duration::from_millis(5));
        report.rungs.insert("SDP".to_string(), h);
        let mut q = QErrorHistogram::default();
        q.record(1.0);
        q.record(1.5);
        q.record(12.0);
        report.qerror.insert("node:Join(Hash)".to_string(), q);
        report
    }

    #[test]
    fn prometheus_text_has_headers_and_series() {
        let text = sample_report().prometheus_text();
        assert!(text.contains("# TYPE sdp_cache_hits_total counter"));
        assert!(text.contains("sdp_cache_hits_total 5"));
        assert!(text.contains("sdp_degradations_memory_total 1"));
        assert!(text.contains("sdp_cached_plans 2"));
        assert!(text.contains("# TYPE sdp_store_writes_total counter"));
        assert!(text.contains("sdp_store_warm_hits_total 2"));
        assert!(text.contains("# TYPE sdp_dlq_depth gauge"));
        assert!(text.contains("sdp_dlq_depth 1"));
        assert!(text.contains("# TYPE sdp_shed_queue_full_total counter"));
        assert!(text.contains("sdp_shed_queue_full_total 7"));
        assert!(text.contains("sdp_served_stale_total 3"));
        assert!(text.contains("sdp_breaker_trips_total 1"));
        assert!(text.contains("# TYPE sdp_queue_depth_high_water gauge"));
        assert!(text.contains("sdp_queue_depth_high_water 9"));
        assert!(text.contains("sdp_inflight_high_water 4"));
        assert!(text.contains("sdp_strategy_latency_seconds_count{strategy=\"SDP\"} 2"));
        assert!(text.contains("sdp_rung_latency_seconds_bucket{rung=\"SDP\",le=\"+Inf\"} 3"));
        assert!(text.contains("# TYPE sdp_qerror histogram"));
        assert!(text.contains("sdp_qerror_bucket{series=\"node:Join(Hash)\",le=\"+Inf\"} 3"));
        assert!(text.contains("sdp_qerror_count{series=\"node:Join(Hash)\"} 3"));
        // Cumulative buckets: the 2 sub-millisecond samples precede
        // the 5 ms one.
        assert!(text.contains("le=\"0.001023\"} 2"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "malformed line: {line}");
        }
    }

    #[test]
    fn json_report_is_parseable_shape() {
        let json = sample_report().to_json();
        assert!(json.starts_with("{\n  \"schema\": 2,\n"));
        assert!(json.contains("\"node:Join(Hash)\""));
        assert!(json.contains("\"hits\": 5"));
        assert!(json.contains("\"requests\": 8"));
        assert!(json.contains("\"memory_degradations\": 1"));
        assert!(json.contains("\"p95_micros\""));
        assert!(json.contains("\"cached_plans\": 2"));
        assert!(json.contains("\"warm_hits\": 2"));
        assert!(json.contains("\"dlq_depth\": 1"));
        assert!(json.contains("\"shed_queue_full\": 7"));
        assert!(json.contains("\"served_stale\": 3"));
        assert!(json.contains("\"breaker_rejections\": 4"));
        assert!(json.contains("\"queue_depth_hwm\": 9"));
        assert!(json.contains("\"inflight_hwm\": 4"));
        // Structural sanity without a JSON parser: balanced braces and
        // brackets, no trailing comma before a closer.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n}"));
        assert!(!json.contains(",\n  }"));
        assert!(!json.contains(", }"));
        assert!(!json.contains(",]"));
    }

    #[test]
    fn empty_report_renders_cleanly() {
        let report = MetricsReport::default();
        let text = report.prometheus_text();
        assert!(text.contains("sdp_cache_hits_total 0"));
        assert!(!text.contains("sdp_rung_latency_seconds"));
        let json = report.to_json();
        assert!(json.contains("\"schema\": 2"));
        assert!(json.contains("\"strategies\": {"));
        assert!(json.contains("\"qerror\": {"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
