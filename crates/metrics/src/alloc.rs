//! A byte-counting global allocator.
//!
//! The harness binary installs [`CountingAllocator`] as the global
//! allocator so each experiment can report the *real* peak heap usage
//! of an optimization run next to the deterministic memory model that
//! decides feasibility. (The memory model exists because real RSS
//! depends on allocator, platform and build; the paper's feasibility
//! frontier must not.)
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: sdp_metrics::alloc::CountingAllocator =
//!     sdp_metrics::alloc::CountingAllocator::new();
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Global allocator wrapper that tracks live and peak bytes.
#[derive(Debug, Default)]
pub struct CountingAllocator;

impl CountingAllocator {
    /// Construct (const, for `#[global_allocator]` statics).
    pub const fn new() -> Self {
        CountingAllocator
    }
}

// SAFETY: delegates all allocation to `System`, only adding atomic
// bookkeeping around it.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live =
                ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        ALLOCATED.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let old = layout.size() as u64;
            let new = new_size as u64;
            if new >= old {
                let live = ALLOCATED.fetch_add(new - old, Ordering::Relaxed) + (new - old);
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                ALLOCATED.fetch_sub(old - new, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Bytes currently allocated (when the counting allocator is
/// installed; 0 otherwise).
pub fn live_bytes() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

/// Peak allocated bytes since the last [`reset_peak`].
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak to the current live level (call before each
/// experiment).
pub fn reset_peak() {
    PEAK.store(ALLOCATED.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Point-in-time copy of the allocator counters — what the metrics
/// exposition endpoints report. Each field is read atomically; the
/// pair is not a single transaction (fine for monitoring).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Bytes currently allocated.
    pub live: u64,
    /// Peak allocated bytes since the last [`reset_peak`].
    pub peak: u64,
}

/// Snapshot the live and peak byte counters in one call.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        live: live_bytes(),
        peak: peak_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counting allocator is NOT installed in unit tests (that
    // would affect every test in the binary); we exercise the atomic
    // bookkeeping directly.
    #[test]
    fn counters_start_consistent() {
        let _ = peak_bytes();
        reset_peak();
        assert_eq!(peak_bytes(), live_bytes());
    }

    #[test]
    fn alloc_roundtrip_updates_counters() {
        let a = CountingAllocator::new();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        let before = live_bytes();
        // SAFETY: valid layout; memory freed below.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(live_bytes(), before + 4096);
            assert!(peak_bytes() >= before + 4096);
            a.dealloc(p, layout);
        }
        assert_eq!(live_bytes(), before);
    }

    #[test]
    fn snapshot_mirrors_the_counters() {
        let a = CountingAllocator::new();
        let layout = Layout::from_size_align(8192, 8).unwrap();
        // SAFETY: valid layout; memory freed below.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let s = snapshot();
            assert_eq!(s.live, live_bytes());
            assert_eq!(s.peak, peak_bytes());
            assert!(s.peak >= s.live, "peak can never trail live");
            a.dealloc(p, layout);
        }
        reset_peak();
        let s = snapshot();
        assert_eq!(s.peak, s.live, "reset_peak pins peak to live");
    }

    #[test]
    fn realloc_adjusts_live_bytes() {
        let a = CountingAllocator::new();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        let before = live_bytes();
        // SAFETY: valid layouts; memory freed below.
        unsafe {
            let p = a.alloc(layout);
            let p2 = a.realloc(p, layout, 2048);
            assert!(!p2.is_null());
            assert_eq!(live_bytes(), before + 2048);
            let p3 = a.realloc(p2, Layout::from_size_align(2048, 8).unwrap(), 512);
            assert_eq!(live_bytes(), before + 512);
            a.dealloc(p3, Layout::from_size_align(512, 8).unwrap());
        }
        assert_eq!(live_bytes(), before);
    }
}
