//! # sdp-metrics — plan-quality metrics and overhead aggregation
//!
//! The measurement vocabulary of the paper's evaluation:
//!
//! * plan-quality classes (refined from Kossmann & Stocker's G/A/B):
//!   **Ideal** (within 1 % of the DP optimum), **Good** (≤ 2×),
//!   **Acceptable** (≤ 10×), **Bad** (> 10×);
//! * **W** — the worst-case plan-cost ratio across a query set;
//! * **ρ** — "the Geometric Mean of the plan-costs normalized … w.r.t.
//!   DP", the overall plan-quality factor;
//! * overheads — memory (MB), time (seconds) and plans costed.
//!
//! Plus a byte-counting global allocator ([`alloc`]) the harness
//! installs to report *real* process allocation peaks alongside the
//! deterministic memory model, and the [`service`] module's request
//! counters (hit/miss/coalesced/evicted) and per-strategy latency
//! table consumed by the `sdp-service` optimizer daemon.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod expo;
pub mod histogram;
pub mod overhead;
pub mod quality;
pub mod service;
pub mod store;

pub use alloc::AllocSnapshot;
pub use expo::{MetricsReport, METRICS_SCHEMA_VERSION};
pub use histogram::{Histogram, HistogramSample, QErrorHistogram};
pub use overhead::{OverheadSample, OverheadSummary};
pub use quality::{geometric_mean_ratio, QualityClass, QualitySummary};
pub use service::{
    CountersSnapshot, GovernorCounters, GovernorSnapshot, LatencyHistogram, LatencyStats,
    OverloadCounters, OverloadSnapshot, RungLatencies, ServiceCounters, StrategyLatencies,
    HISTOGRAM_BUCKETS,
};
pub use store::{StoreCounters, StoreSnapshot};
