//! Service-side observability: cache/coalescing counters and
//! per-strategy latency aggregation for the resident optimizer daemon.
//!
//! Everything here is `Send + Sync` and lock-light — counters are
//! relaxed atomics bumped on every request, latencies a mutex-guarded
//! map touched only on cache misses (an actual enumeration ran, so the
//! lock is noise against its cost).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Monotonic counters for one service instance.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evicted: AtomicU64,
    stale_evicted: AtomicU64,
    enumerations: AtomicU64,
    plans_costed: AtomicU64,
}

impl ServiceCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ServiceCounters::default()
    }

    /// A request was served from the plan cache.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A request missed the cache (and triggered or joined an
    /// enumeration as its leader).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was coalesced onto another request's in-flight
    /// enumeration.
    pub fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` entries were evicted by LRU capacity pressure.
    pub fn add_evicted(&self, n: u64) {
        self.evicted.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` entries were invalidated by a statistics-epoch change.
    pub fn add_stale_evicted(&self, n: u64) {
        self.stale_evicted.fetch_add(n, Ordering::Relaxed);
    }

    /// An actual optimizer enumeration ran, costing `plans` plan
    /// alternatives.
    pub fn record_enumeration(&self, plans: u64) {
        self.enumerations.fetch_add(1, Ordering::Relaxed);
        self.plans_costed.fetch_add(plans, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot of all counters (each counter is
    /// read atomically; the set is not a single atomic transaction).
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            stale_evicted: self.stale_evicted.load(Ordering::Relaxed),
            enumerations: self.enumerations.load(Ordering::Relaxed),
            plans_costed: self.plans_costed.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`ServiceCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that led an enumeration.
    pub misses: u64,
    /// Requests coalesced onto an in-flight enumeration.
    pub coalesced: u64,
    /// Entries evicted by LRU capacity pressure.
    pub evicted: u64,
    /// Entries invalidated by statistics-epoch changes.
    pub stale_evicted: u64,
    /// Optimizer enumerations actually run.
    pub enumerations: u64,
    /// Total plan alternatives costed across all enumerations.
    pub plans_costed: u64,
}

impl CountersSnapshot {
    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses + self.coalesced
    }

    /// Fraction of requests that avoided running an enumeration
    /// themselves (hits + coalesced); 0 when no requests were seen.
    pub fn amortized_rate(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            return 0.0;
        }
        (self.hits + self.coalesced) as f64 / total as f64
    }
}

/// Latency aggregate for one enumeration strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub total: Duration,
    /// Largest sample.
    pub max: Duration,
}

impl LatencyStats {
    /// Fold in one sample.
    pub fn record(&mut self, sample: Duration) {
        self.count += 1;
        self.total += sample;
        self.max = self.max.max(sample);
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Per-strategy latency table, keyed by the strategy's display label
/// (e.g. `"SDP"`, `"DP"`, `"IDP(4)"`).
#[derive(Debug, Default)]
pub struct StrategyLatencies {
    inner: Mutex<BTreeMap<String, LatencyStats>>,
}

impl StrategyLatencies {
    /// Fresh empty table.
    pub fn new() -> Self {
        StrategyLatencies::default()
    }

    /// Record one enumeration's wall-clock time under its strategy
    /// label.
    pub fn record(&self, strategy: &str, sample: Duration) {
        let mut inner = self.inner.lock().expect("latency table poisoned");
        inner
            .entry(strategy.to_string())
            .or_default()
            .record(sample);
    }

    /// Copy of the table, ordered by strategy label.
    pub fn snapshot(&self) -> BTreeMap<String, LatencyStats> {
        self.inner.lock().expect("latency table poisoned").clone()
    }
}

/// Monotonic counters for the resource governor's degradation ladder:
/// how often requests descended, why, and how the daemon's leader
/// retry policy behaved.
#[derive(Debug, Default)]
pub struct GovernorCounters {
    degradations: AtomicU64,
    deadline_degradations: AtomicU64,
    memory_degradations: AtomicU64,
    cancel_degradations: AtomicU64,
    timeouts: AtomicU64,
    leader_retries: AtomicU64,
}

impl GovernorCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        GovernorCounters::default()
    }

    /// A request descended one rung because its deadline slice
    /// expired.
    pub fn record_deadline_degradation(&self) {
        self.degradations.fetch_add(1, Ordering::Relaxed);
        self.deadline_degradations.fetch_add(1, Ordering::Relaxed);
    }

    /// A request descended one rung because the memory budget tripped.
    pub fn record_memory_degradation(&self) {
        self.degradations.fetch_add(1, Ordering::Relaxed);
        self.memory_degradations.fetch_add(1, Ordering::Relaxed);
    }

    /// A request jumped to the cheapest rung on caller cancellation.
    pub fn record_cancel_degradation(&self) {
        self.degradations.fetch_add(1, Ordering::Relaxed);
        self.cancel_degradations.fetch_add(1, Ordering::Relaxed);
    }

    /// A request failed outright with a deadline error (even the
    /// bottom rung could not finish in time).
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// A panicking single-flight leader was retried on the next-
    /// cheaper rung.
    pub fn record_leader_retry(&self) {
        self.leader_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> GovernorSnapshot {
        GovernorSnapshot {
            degradations: self.degradations.load(Ordering::Relaxed),
            deadline_degradations: self.deadline_degradations.load(Ordering::Relaxed),
            memory_degradations: self.memory_degradations.load(Ordering::Relaxed),
            cancel_degradations: self.cancel_degradations.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            leader_retries: self.leader_retries.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`GovernorCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorSnapshot {
    /// Total ladder descents taken.
    pub degradations: u64,
    /// Descents caused by an expired deadline slice.
    pub deadline_degradations: u64,
    /// Descents caused by the memory budget.
    pub memory_degradations: u64,
    /// Jumps to the bottom rung caused by caller cancellation.
    pub cancel_degradations: u64,
    /// Requests that failed outright on a deadline error.
    pub timeouts: u64,
    /// Panicking leaders retried on a cheaper rung.
    pub leader_retries: u64,
}

/// Monotonic counters and gauges for the daemon's overload-control
/// layer: bounded-admission sheds, stale serves, the per-fingerprint
/// circuit breaker, and queue-depth / in-flight occupancy (current
/// value plus high-water mark).
///
/// The gauges are updated through paired enter/leave methods so the
/// high-water marks are exact regardless of interleaving: the mark is
/// folded in with `fetch_max` at every increment.
#[derive(Debug, Default)]
pub struct OverloadCounters {
    shed_queue_full: AtomicU64,
    shed_deadline: AtomicU64,
    served_stale: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_rejections: AtomicU64,
    breaker_probes: AtomicU64,
    breaker_recoveries: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_hwm: AtomicU64,
    inflight: AtomicU64,
    inflight_hwm: AtomicU64,
}

impl OverloadCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        OverloadCounters::default()
    }

    /// A request was rejected at submit because the admission queue
    /// was full.
    pub fn record_shed_queue_full(&self) {
        self.shed_queue_full.fetch_add(1, Ordering::Relaxed);
    }

    /// A dequeued request was dropped because its remaining deadline
    /// (after charged queue-wait) was below the cheapest rung's floor.
    pub fn record_shed_deadline(&self) {
        self.shed_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// A request under admission pressure was answered with an
    /// epoch-stale plan instead of being shed.
    pub fn record_served_stale(&self) {
        self.served_stale.fetch_add(1, Ordering::Relaxed);
    }

    /// A fingerprint's circuit breaker opened (K consecutive
    /// failures).
    pub fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// An arrival was rejected fast by an open breaker.
    pub fn record_breaker_rejection(&self) {
        self.breaker_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// An arrival was let through an open breaker as a half-open
    /// probe.
    pub fn record_breaker_probe(&self) {
        self.breaker_probes.fetch_add(1, Ordering::Relaxed);
    }

    /// A probe succeeded and closed its breaker.
    pub fn record_breaker_recovery(&self) {
        self.breaker_recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// A request entered the admission queue; returns the new depth.
    pub fn queue_entered(&self) -> u64 {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_hwm.fetch_max(depth, Ordering::Relaxed);
        depth
    }

    /// A request left the admission queue (dequeued past the gate, or
    /// answered at submit).
    pub fn queue_left(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// A worker started optimizing a request.
    pub fn job_started(&self) {
        let now = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.inflight_hwm.fetch_max(now, Ordering::Relaxed);
    }

    /// A worker finished (successfully or not) a request it started.
    pub fn job_finished(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters and gauges.
    pub fn snapshot(&self) -> OverloadSnapshot {
        OverloadSnapshot {
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            served_stale: self.served_stale.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_rejections: self.breaker_rejections.load(Ordering::Relaxed),
            breaker_probes: self.breaker_probes.load(Ordering::Relaxed),
            breaker_recoveries: self.breaker_recoveries.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_hwm: self.queue_depth_hwm.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            inflight_hwm: self.inflight_hwm.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`OverloadCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadSnapshot {
    /// Requests rejected at submit (admission queue full).
    pub shed_queue_full: u64,
    /// Dequeued requests dropped for an already-expired deadline.
    pub shed_deadline: u64,
    /// Requests answered with an epoch-stale plan under pressure.
    pub served_stale: u64,
    /// Circuit-breaker opens.
    pub breaker_trips: u64,
    /// Arrivals rejected fast by an open breaker.
    pub breaker_rejections: u64,
    /// Arrivals admitted through an open breaker as half-open probes.
    pub breaker_probes: u64,
    /// Probes that succeeded and closed their breaker.
    pub breaker_recoveries: u64,
    /// Current admission-queue depth.
    pub queue_depth: u64,
    /// High-water admission-queue depth.
    pub queue_depth_hwm: u64,
    /// Requests currently being optimized by workers.
    pub inflight: u64,
    /// High-water in-flight count.
    pub inflight_hwm: u64,
}

impl OverloadSnapshot {
    /// Total requests shed (either at submit or at dequeue).
    pub fn sheds(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline
    }
}

pub use crate::histogram::{LatencyHistogram, HISTOGRAM_BUCKETS};

/// Per-rung latency histograms, keyed by the producing strategy's
/// display label (e.g. `"SDP"`, `"GOO"`) — unlike
/// [`StrategyLatencies`] this tracks the rung that actually *produced*
/// the plan after any governed degradation, with full distributions
/// instead of mean/max only.
#[derive(Debug, Default)]
pub struct RungLatencies {
    inner: Mutex<BTreeMap<String, LatencyHistogram>>,
}

impl RungLatencies {
    /// Fresh empty table.
    pub fn new() -> Self {
        RungLatencies::default()
    }

    /// Record one governed enumeration's wall-clock time under the
    /// label of the rung that produced its plan.
    pub fn record(&self, rung: &str, sample: Duration) {
        let mut inner = self.inner.lock().expect("rung latency table poisoned");
        inner.entry(rung.to_string()).or_default().record(sample);
    }

    /// Copy of the table, ordered by rung label.
    pub fn snapshot(&self) -> BTreeMap<String, LatencyHistogram> {
        self.inner
            .lock()
            .expect("rung latency table poisoned")
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = ServiceCounters::new();
        c.record_miss();
        c.record_enumeration(120);
        c.record_hit();
        c.record_hit();
        c.record_coalesced();
        c.add_evicted(3);
        c.add_stale_evicted(2);
        let s = c.snapshot();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.coalesced, 1);
        assert_eq!(s.evicted, 3);
        assert_eq!(s.stale_evicted, 2);
        assert_eq!(s.enumerations, 1);
        assert_eq!(s.plans_costed, 120);
        assert_eq!(s.requests(), 4);
        assert!((s.amortized_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_has_zero_rate() {
        let s = ServiceCounters::new().snapshot();
        assert_eq!(s.requests(), 0);
        assert_eq!(s.amortized_rate(), 0.0);
    }

    #[test]
    fn latency_stats_track_mean_and_max() {
        let mut l = LatencyStats::default();
        assert_eq!(l.mean(), Duration::ZERO);
        l.record(Duration::from_millis(10));
        l.record(Duration::from_millis(30));
        assert_eq!(l.count, 2);
        assert_eq!(l.mean(), Duration::from_millis(20));
        assert_eq!(l.max, Duration::from_millis(30));
    }

    #[test]
    fn strategy_table_is_keyed_by_label() {
        let t = StrategyLatencies::new();
        t.record("SDP", Duration::from_millis(5));
        t.record("SDP", Duration::from_millis(7));
        t.record("DP", Duration::from_millis(50));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap["SDP"].count, 2);
        assert_eq!(snap["DP"].count, 1);
    }

    #[test]
    fn governor_counters_break_down_by_reason() {
        let g = GovernorCounters::new();
        g.record_deadline_degradation();
        g.record_deadline_degradation();
        g.record_memory_degradation();
        g.record_cancel_degradation();
        g.record_timeout();
        g.record_leader_retry();
        let s = g.snapshot();
        assert_eq!(s.degradations, 4);
        assert_eq!(s.deadline_degradations, 2);
        assert_eq!(s.memory_degradations, 1);
        assert_eq!(s.cancel_degradations, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.leader_retries, 1);
    }

    #[test]
    fn histogram_buckets_are_log2_microseconds() {
        assert_eq!(LatencyHistogram::bucket_for(Duration::ZERO), 0);
        assert_eq!(LatencyHistogram::bucket_for(Duration::from_micros(1)), 0);
        assert_eq!(LatencyHistogram::bucket_for(Duration::from_micros(2)), 1);
        assert_eq!(LatencyHistogram::bucket_for(Duration::from_micros(3)), 1);
        assert_eq!(LatencyHistogram::bucket_for(Duration::from_micros(4)), 2);
        assert_eq!(LatencyHistogram::bucket_for(Duration::from_millis(1)), 9);
        assert_eq!(
            LatencyHistogram::bucket_for(Duration::from_secs(1 << 40)),
            HISTOGRAM_BUCKETS - 1,
            "outliers clamp into the last bucket"
        );
        assert_eq!(
            LatencyHistogram::bucket_upper_bound(9),
            Duration::from_micros(1023)
        );
    }

    #[test]
    fn histogram_records_and_reports_nonzero_buckets() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_millis(1));
        assert_eq!(h.count, 3);
        assert_eq!(h.max, Duration::from_millis(1));
        let nz = h.nonzero_buckets();
        assert_eq!(nz.len(), 2);
        assert_eq!(nz[0], (Duration::from_micros(3), 2));
        assert_eq!(nz[1].1, 1);
        assert!(h.mean() > Duration::from_micros(300));
    }

    #[test]
    fn histogram_bucket_edges_split_powers_of_two() {
        // 2^i µs is the first sample of bucket i; 2^i − 1 µs is the
        // last sample of bucket i−1 — exactly the upper-bound value.
        for i in 1..20 {
            let edge = 1u64 << i;
            assert_eq!(
                LatencyHistogram::bucket_for(Duration::from_micros(edge)),
                i,
                "2^{i} µs opens bucket {i}"
            );
            assert_eq!(
                LatencyHistogram::bucket_for(Duration::from_micros(edge - 1)),
                i - 1,
                "2^{i} − 1 µs closes bucket {}",
                i - 1
            );
            assert_eq!(
                LatencyHistogram::bucket_upper_bound(i - 1),
                Duration::from_micros(edge - 1)
            );
        }
    }

    #[test]
    fn histogram_quantiles_walk_the_distribution() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), Duration::ZERO, "empty histogram");
        // 90 fast samples in bucket 3 (8–15 µs), 9 in bucket 9
        // (512–1023 µs), 1 slow outlier in bucket 13 (8192–16383 µs).
        for _ in 0..90 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..9 {
            h.record(Duration::from_micros(600));
        }
        h.record(Duration::from_micros(9000));
        assert_eq!(h.p50(), LatencyHistogram::bucket_upper_bound(3));
        assert_eq!(h.p95(), LatencyHistogram::bucket_upper_bound(9));
        assert_eq!(h.p99(), LatencyHistogram::bucket_upper_bound(9));
        // p100 clamps to the observed max, not the bucket's upper edge.
        assert_eq!(h.quantile(1.0), Duration::from_micros(9000));
    }

    #[test]
    fn histogram_quantile_clamps_to_observed_max() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_micros(8200));
        // The single sample sits in bucket 13 (upper bound 16383 µs);
        // the estimate must not exceed what was actually observed.
        assert_eq!(h.p50(), Duration::from_micros(8200));
    }

    #[test]
    fn histogram_merge_is_bucketwise_sum() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        for _ in 0..50 {
            a.record(Duration::from_micros(10));
        }
        for _ in 0..50 {
            b.record(Duration::from_micros(600));
        }
        b.record(Duration::from_micros(9000));

        // Reference: one histogram fed every sample directly.
        let mut whole = LatencyHistogram::default();
        for _ in 0..50 {
            whole.record(Duration::from_micros(10));
        }
        for _ in 0..50 {
            whole.record(Duration::from_micros(600));
        }
        whole.record(Duration::from_micros(9000));

        a.merge(&b);
        assert_eq!(a, whole, "merge must equal recording the union");
        assert_eq!(a.count, 101);
        assert_eq!(a.max, Duration::from_micros(9000));
        assert_eq!(a.p50(), LatencyHistogram::bucket_upper_bound(9));
    }

    #[test]
    fn rung_table_is_keyed_by_label() {
        let t = RungLatencies::new();
        t.record("GOO", Duration::from_micros(80));
        t.record("GOO", Duration::from_micros(90));
        t.record("SDP", Duration::from_millis(4));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap["GOO"].count, 2);
        assert_eq!(snap["SDP"].count, 1);
    }

    #[test]
    fn overload_counters_track_decisions_and_high_water_gauges() {
        let o = OverloadCounters::new();
        assert_eq!(o.queue_entered(), 1);
        assert_eq!(o.queue_entered(), 2);
        o.queue_left();
        assert_eq!(o.queue_depth(), 1);
        assert_eq!(o.queue_entered(), 2, "depth refills below the mark");
        o.queue_left();
        o.queue_left();
        o.job_started();
        o.job_started();
        o.job_finished();
        o.record_shed_queue_full();
        o.record_shed_queue_full();
        o.record_shed_deadline();
        o.record_served_stale();
        o.record_breaker_trip();
        o.record_breaker_rejection();
        o.record_breaker_probe();
        o.record_breaker_recovery();
        let s = o.snapshot();
        assert_eq!(s.shed_queue_full, 2);
        assert_eq!(s.shed_deadline, 1);
        assert_eq!(s.sheds(), 3);
        assert_eq!(s.served_stale, 1);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.breaker_rejections, 1);
        assert_eq!(s.breaker_probes, 1);
        assert_eq!(s.breaker_recoveries, 1);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.queue_depth_hwm, 2, "high-water survives the drain");
        assert_eq!(s.inflight, 1);
        assert_eq!(s.inflight_hwm, 2);
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let c = std::sync::Arc::new(ServiceCounters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_hit();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().hits, 4000);
    }
}
