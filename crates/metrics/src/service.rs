//! Service-side observability: cache/coalescing counters and
//! per-strategy latency aggregation for the resident optimizer daemon.
//!
//! Everything here is `Send + Sync` and lock-light — counters are
//! relaxed atomics bumped on every request, latencies a mutex-guarded
//! map touched only on cache misses (an actual enumeration ran, so the
//! lock is noise against its cost).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Monotonic counters for one service instance.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evicted: AtomicU64,
    stale_evicted: AtomicU64,
    enumerations: AtomicU64,
    plans_costed: AtomicU64,
}

impl ServiceCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ServiceCounters::default()
    }

    /// A request was served from the plan cache.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A request missed the cache (and triggered or joined an
    /// enumeration as its leader).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was coalesced onto another request's in-flight
    /// enumeration.
    pub fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` entries were evicted by LRU capacity pressure.
    pub fn add_evicted(&self, n: u64) {
        self.evicted.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` entries were invalidated by a statistics-epoch change.
    pub fn add_stale_evicted(&self, n: u64) {
        self.stale_evicted.fetch_add(n, Ordering::Relaxed);
    }

    /// An actual optimizer enumeration ran, costing `plans` plan
    /// alternatives.
    pub fn record_enumeration(&self, plans: u64) {
        self.enumerations.fetch_add(1, Ordering::Relaxed);
        self.plans_costed.fetch_add(plans, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot of all counters (each counter is
    /// read atomically; the set is not a single atomic transaction).
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            stale_evicted: self.stale_evicted.load(Ordering::Relaxed),
            enumerations: self.enumerations.load(Ordering::Relaxed),
            plans_costed: self.plans_costed.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`ServiceCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that led an enumeration.
    pub misses: u64,
    /// Requests coalesced onto an in-flight enumeration.
    pub coalesced: u64,
    /// Entries evicted by LRU capacity pressure.
    pub evicted: u64,
    /// Entries invalidated by statistics-epoch changes.
    pub stale_evicted: u64,
    /// Optimizer enumerations actually run.
    pub enumerations: u64,
    /// Total plan alternatives costed across all enumerations.
    pub plans_costed: u64,
}

impl CountersSnapshot {
    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses + self.coalesced
    }

    /// Fraction of requests that avoided running an enumeration
    /// themselves (hits + coalesced); 0 when no requests were seen.
    pub fn amortized_rate(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            return 0.0;
        }
        (self.hits + self.coalesced) as f64 / total as f64
    }
}

/// Latency aggregate for one enumeration strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub total: Duration,
    /// Largest sample.
    pub max: Duration,
}

impl LatencyStats {
    /// Fold in one sample.
    pub fn record(&mut self, sample: Duration) {
        self.count += 1;
        self.total += sample;
        self.max = self.max.max(sample);
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Per-strategy latency table, keyed by the strategy's display label
/// (e.g. `"SDP"`, `"DP"`, `"IDP(4)"`).
#[derive(Debug, Default)]
pub struct StrategyLatencies {
    inner: Mutex<BTreeMap<String, LatencyStats>>,
}

impl StrategyLatencies {
    /// Fresh empty table.
    pub fn new() -> Self {
        StrategyLatencies::default()
    }

    /// Record one enumeration's wall-clock time under its strategy
    /// label.
    pub fn record(&self, strategy: &str, sample: Duration) {
        let mut inner = self.inner.lock().expect("latency table poisoned");
        inner
            .entry(strategy.to_string())
            .or_default()
            .record(sample);
    }

    /// Copy of the table, ordered by strategy label.
    pub fn snapshot(&self) -> BTreeMap<String, LatencyStats> {
        self.inner.lock().expect("latency table poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = ServiceCounters::new();
        c.record_miss();
        c.record_enumeration(120);
        c.record_hit();
        c.record_hit();
        c.record_coalesced();
        c.add_evicted(3);
        c.add_stale_evicted(2);
        let s = c.snapshot();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.coalesced, 1);
        assert_eq!(s.evicted, 3);
        assert_eq!(s.stale_evicted, 2);
        assert_eq!(s.enumerations, 1);
        assert_eq!(s.plans_costed, 120);
        assert_eq!(s.requests(), 4);
        assert!((s.amortized_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_has_zero_rate() {
        let s = ServiceCounters::new().snapshot();
        assert_eq!(s.requests(), 0);
        assert_eq!(s.amortized_rate(), 0.0);
    }

    #[test]
    fn latency_stats_track_mean_and_max() {
        let mut l = LatencyStats::default();
        assert_eq!(l.mean(), Duration::ZERO);
        l.record(Duration::from_millis(10));
        l.record(Duration::from_millis(30));
        assert_eq!(l.count, 2);
        assert_eq!(l.mean(), Duration::from_millis(20));
        assert_eq!(l.max, Duration::from_millis(30));
    }

    #[test]
    fn strategy_table_is_keyed_by_label() {
        let t = StrategyLatencies::new();
        t.record("SDP", Duration::from_millis(5));
        t.record("SDP", Duration::from_millis(7));
        t.record("DP", Duration::from_millis(50));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap["SDP"].count, 2);
        assert_eq!(snap["DP"].count, 1);
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let c = std::sync::Arc::new(ServiceCounters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_hit();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().hits, 4000);
    }
}
