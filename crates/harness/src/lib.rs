//! # sdp-harness — experiment drivers for every paper table and figure
//!
//! One module per experiment (see `DESIGN.md` for the index), plus the
//! shared machinery: a [`runner`] that executes `(topology, algorithm)`
//! configurations over seeded query-instance streams, and [`tables`]
//! that renders rows in the paper's format.
//!
//! The `sdp-experiments` binary exposes each experiment as a
//! subcommand and `all` regenerates the measured columns of
//! `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod runner;
pub mod svg;
pub mod tables;

pub use runner::{ExperimentConfig, RunOutcome, Runner};
