//! Rendering experiment results in the paper's table format.

use sdp_metrics::{overhead::sci, OverheadSummary, QualitySummary};

/// One row of a plan-quality table (the paper's I/G/A/B/W/ρ columns).
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Row label, e.g. `"IDP(7)"`.
    pub technique: String,
    /// `None` renders the paper's `*` (infeasible).
    pub summary: Option<QualitySummary>,
    /// `true` for the reference technique (all-ideal by definition).
    pub is_reference: bool,
}

/// One row of an overheads table (Memory / Time / Costing columns).
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Row label.
    pub technique: String,
    /// `None` renders `*`.
    pub summary: Option<OverheadSummary>,
}

/// Render a plan-quality table titled like the paper's.
pub fn render_quality_table(title: &str, graph_label: &str, rows: &[QualityRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<16} {:<10} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8}\n",
        "Join Graph", "Technique", "I%", "G%", "A%", "B%", "W", "rho"
    ));
    for (i, row) in rows.iter().enumerate() {
        let graph = if i == 0 { graph_label } else { "" };
        match (&row.summary, row.is_reference) {
            (Some(s), _) => out.push_str(&format!(
                "{:<16} {:<10} {:>6.0} {:>6.0} {:>6.0} {:>6.0} {:>8.2} {:>8.2}\n",
                graph,
                row.technique,
                s.ideal_pct,
                s.good_pct,
                s.acceptable_pct,
                s.bad_pct,
                s.worst,
                s.rho
            )),
            (None, true) => out.push_str(&format!(
                "{:<16} {:<10} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8}\n",
                graph, row.technique, 100, 0, 0, 0, 1.0, 1.0
            )),
            (None, false) => out.push_str(&format!(
                "{:<16} {:<10} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8}\n",
                graph, row.technique, "*", "*", "*", "*", "*", "*"
            )),
        }
    }
    out
}

/// Render an overheads table.
pub fn render_overhead_table(title: &str, graph_label: &str, rows: &[OverheadRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<16} {:<10} {:>12} {:>12} {:>14}\n",
        "Join Graph", "Technique", "Memory (MB)", "Time (s)", "Costing"
    ));
    for (i, row) in rows.iter().enumerate() {
        let graph = if i == 0 { graph_label } else { "" };
        match &row.summary {
            Some(s) => out.push_str(&format!(
                "{:<16} {:<10} {:>12.2} {:>12.4} {:>14}\n",
                graph,
                row.technique,
                s.memory_mb,
                s.time_s,
                s.plans_costed_sci()
            )),
            None => out.push_str(&format!(
                "{:<16} {:<10} {:>12} {:>12} {:>14}\n",
                graph, row.technique, "*", "*", "*"
            )),
        }
    }
    out
}

/// Render a markdown quality table for `EXPERIMENTS.md`.
pub fn markdown_quality_rows(rows: &[QualityRow]) -> String {
    let mut out =
        String::from("| Technique | I% | G% | A% | B% | W | ρ |\n|---|---|---|---|---|---|---|\n");
    for row in rows {
        match (&row.summary, row.is_reference) {
            (Some(s), _) => out.push_str(&format!(
                "| {} | {:.0} | {:.0} | {:.0} | {:.0} | {:.2} | {:.3} |\n",
                row.technique, s.ideal_pct, s.good_pct, s.acceptable_pct, s.bad_pct, s.worst, s.rho
            )),
            (None, true) => out.push_str(&format!(
                "| {} | 100 | 0 | 0 | 0 | 1.00 | 1.000 |\n",
                row.technique
            )),
            (None, false) => {
                out.push_str(&format!("| {} | * | * | * | * | * | * |\n", row.technique))
            }
        }
    }
    out
}

/// Render a markdown overhead table for `EXPERIMENTS.md`.
pub fn markdown_overhead_rows(rows: &[OverheadRow]) -> String {
    let mut out =
        String::from("| Technique | Memory (MB) | Time (s) | Plans costed |\n|---|---|---|---|\n");
    for row in rows {
        match &row.summary {
            Some(s) => out.push_str(&format!(
                "| {} | {:.2} | {:.4} | {} |\n",
                row.technique,
                s.memory_mb,
                s.time_s,
                sci(s.plans_costed)
            )),
            None => out.push_str(&format!("| {} | * | * | * |\n", row.technique)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_quality() -> QualitySummary {
        QualitySummary::from_ratios(&[1.0, 1.5, 3.0, 12.0])
    }

    #[test]
    fn quality_table_renders_all_rows() {
        let rows = vec![
            QualityRow {
                technique: "DP".into(),
                summary: None,
                is_reference: true,
            },
            QualityRow {
                technique: "IDP(7)".into(),
                summary: Some(sample_quality()),
                is_reference: false,
            },
            QualityRow {
                technique: "SDP".into(),
                summary: None,
                is_reference: false,
            },
        ];
        let t = render_quality_table("Table X", "Star-15", &rows);
        assert!(t.contains("Star-15"));
        assert!(t.contains("IDP(7)"));
        assert!(t.contains('*'), "infeasible renders as *");
        assert_eq!(t.lines().count(), 5);
    }

    #[test]
    fn overhead_table_renders_sci_notation() {
        let rows = vec![OverheadRow {
            technique: "SDP".into(),
            summary: Some(OverheadSummary {
                runs: 10,
                memory_mb: 4.33,
                time_s: 0.1,
                plans_costed: 50_000.0,
            }),
        }];
        let t = render_overhead_table("Table Y", "Star-Chain-15", &rows);
        assert!(t.contains("5.0E4"));
        assert!(t.contains("4.33"));
    }

    #[test]
    fn markdown_rows_are_well_formed() {
        let rows = vec![QualityRow {
            technique: "SDP".into(),
            summary: Some(sample_quality()),
            is_reference: false,
        }];
        let md = markdown_quality_rows(&rows);
        for line in md.lines() {
            assert_eq!(line.matches('|').count(), 8, "line: {line}");
        }
    }
}
