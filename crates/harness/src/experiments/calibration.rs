//! Calibration experiments: Table 2.1 (DP overheads on chains versus
//! stars — the observation motivating localized pruning) and
//! Table 3.3 (maximum star scale-up before memory exhaustion).

use sdp_catalog::Catalog;
use sdp_core::{Algorithm, SdpConfig};
use sdp_metrics::overhead::sci;
use sdp_query::Topology;

use crate::runner::{overheads, ExperimentConfig, Runner};

use super::{ExperimentReport, Session};

/// Table 2.1 — DP optimization overheads for chain and star queries
/// of increasing size. Chains stay trivial through 28 relations;
/// stars explode and run out of memory before 20 — "it is the
/// presence of hub relations that are primarily responsible for the
/// high overheads of DP".
pub fn table_2_1(session: &Session) -> ExperimentReport {
    // A few instances per size for stable means; the numbers are
    // per-query averages like the paper's. The 28-relation chains
    // exceed the 25-relation base schema, so the sweep runs on a
    // 32-relation extension of it.
    let catalog = Catalog::extended(32);
    let cfg = ExperimentConfig {
        instances: 3,
        ..session.config
    };
    let runner = Runner::new(&catalog, cfg);

    let mut text = String::from("Table 2.1: DP Overheads (Chain and Star)\n");
    text.push_str(&format!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}\n",
        "N", "Chain time(s)", "Chain mem(MB)", "Star time(s)", "Star mem(MB)"
    ));
    let mut markdown = String::from(
        "| N | Chain time (s) | Chain mem (MB) | Star time (s) | Star mem (MB) |\n|---|---|---|---|---|\n",
    );

    for n in (4..=28).step_by(4) {
        let chain = runner.run(Topology::Chain(n), Algorithm::Dp);
        let chain_cell = if Runner::is_infeasible(&chain) {
            ("–".to_string(), "–".to_string())
        } else {
            let o = overheads(&chain);
            (format!("{:.4}", o.time_s), format!("{:.2}", o.memory_mb))
        };
        let star_cell = if n <= 16 {
            let star = runner.run(Topology::Star(n), Algorithm::Dp);
            if Runner::is_infeasible(&star) {
                ("–".to_string(), "–".to_string())
            } else {
                let o = overheads(&star);
                (format!("{:.4}", o.time_s), format!("{:.2}", o.memory_mb))
            }
        } else {
            // The paper stops reporting stars beyond 16 (dashes):
            // DP is out of memory there, as Table 3.2 confirms.
            ("–".to_string(), "–".to_string())
        };
        text.push_str(&format!(
            "{:>6} {:>14} {:>14} {:>14} {:>14}\n",
            n, chain_cell.0, chain_cell.1, star_cell.0, star_cell.1
        ));
        markdown.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            n, chain_cell.0, chain_cell.1, star_cell.0, star_cell.1
        ));
    }

    ExperimentReport {
        id: "table-2-1",
        title: "Table 2.1 — DP Overheads (Chain and Star)".into(),
        text,
        markdown,
    }
}

/// Table 3.3 — maximum star join size each algorithm can optimize
/// within the memory budget, and the time taken at that maximum.
/// Uses the extended schema (the paper: "with an extended database
/// schema").
pub fn table_3_3(session: &Session) -> ExperimentReport {
    let extended = Catalog::extended(64);
    let cfg = ExperimentConfig {
        instances: 1,
        ..session.config
    };
    let runner = Runner::new(&extended, cfg);
    let algorithms = [
        Algorithm::Dp,
        Algorithm::Idp { k: 7 },
        Algorithm::Idp { k: 4 },
        Algorithm::Sdp(SdpConfig::paper()),
    ];

    let mut text = String::from("Table 3.3: Maximum Star Scaleup (memory budget 1 GB)\n");
    text.push_str(&format!(
        "{:<10} {:>14} {:>12} {:>14}\n",
        "Technique", "Max relations", "Time (s)", "Costing"
    ));
    let mut markdown = String::from(
        "| Technique | Max relations | Time (s) | Plans costed |\n|---|---|---|---|\n",
    );

    for alg in algorithms {
        // Probe star sizes upward in steps of 5, then refine by 1.
        let mut max_ok: Option<(usize, f64, f64)> = None;
        let mut n = 10;
        let mut step = 5;
        let cap = 60;
        loop {
            let out = runner.run(Topology::Star(n), alg);
            let feasible = !Runner::is_infeasible(&out);
            if feasible {
                let o = overheads(&out);
                max_ok = Some((n, o.time_s, o.plans_costed));
                if n >= cap {
                    break;
                }
                n = (n + step).min(cap);
            } else if step > 1 {
                // Back up and refine.
                n = max_ok.map(|(m, _, _)| m + 1).unwrap_or(4);
                step = 1;
            } else {
                break;
            }
        }
        match max_ok {
            Some((m, t, p)) => {
                let capped = if m >= cap { "+" } else { "" };
                text.push_str(&format!(
                    "{:<10} {:>13}{capped} {:>12.3} {:>14}\n",
                    alg.label(),
                    m,
                    t,
                    sci(p)
                ));
                markdown.push_str(&format!(
                    "| {} | {}{capped} | {:.3} | {} |\n",
                    alg.label(),
                    m,
                    t,
                    sci(p)
                ));
            }
            None => {
                text.push_str(&format!(
                    "{:<10} {:>14} {:>12} {:>14}\n",
                    alg.label(),
                    "*",
                    "*",
                    "*"
                ));
                markdown.push_str(&format!("| {} | * | * | * |\n", alg.label()));
            }
        }
    }

    ExperimentReport {
        id: "table-3-3",
        title: "Table 3.3 — Maximum Star Scale-up".into(),
        text,
        markdown,
    }
}
