//! Experiments beyond the paper's printed tables, each tied to a
//! claim the paper makes in prose:
//!
//! * `extra-skewed` — "we have experimented with both uniform and
//!   skewed (exponential) distributions": the Star-Chain-15 quality
//!   table on the skewed catalog;
//! * `extra-topologies` — "our results for the other topologies are
//!   similar in flavor": cycle and clique quality tables;
//! * `extra-idp-variants` — why the paper calls IDP1-balanced-bestRow
//!   "the best overall performer": the ballooning hybrid versus
//!   standard IDP1, plus the randomized II/SA baselines, on one
//!   quality/effort table.

use sdp_catalog::Catalog;
use sdp_core::{Algorithm, SdpConfig};
use sdp_metrics::{geometric_mean_ratio, QualitySummary};
use sdp_query::Topology;

use crate::runner::{overheads, ExperimentConfig, Runner};
use crate::tables::{markdown_quality_rows, render_quality_table, QualityRow};

use super::{ExperimentReport, Session};

const SDP: Algorithm = Algorithm::Sdp(SdpConfig {
    partitioning: sdp_core::Partitioning::RootHub,
    skyline: sdp_core::SkylineOption::PairwiseUnion,
});

/// Quality rows on an arbitrary catalog (the session cache only covers
/// the default catalog).
fn quality_rows_on(
    catalog: &Catalog,
    config: ExperimentConfig,
    topology: Topology,
    algorithms: &[Algorithm],
) -> Vec<QualityRow> {
    let runner = Runner::new(catalog, config);
    let reference = runner.run(topology, Algorithm::Dp);
    let dp_ok = !Runner::is_infeasible(&reference);
    algorithms
        .iter()
        .map(|&a| {
            let outcomes = if a == Algorithm::Dp {
                reference.clone()
            } else {
                runner.run(topology, a)
            };
            let is_reference = a == Algorithm::Dp && dp_ok;
            let summary = if Runner::is_infeasible(&outcomes) {
                None
            } else if is_reference {
                Some(QualitySummary::reference(outcomes.len()))
            } else {
                crate::runner::quality_against(&reference, &outcomes)
            };
            QualityRow {
                technique: a.label(),
                summary,
                is_reference,
            }
        })
        .collect()
}

/// `extra-skewed` — Star-Chain-15 on the skewed (exponential) catalog.
pub fn extra_skewed(session: &Session) -> ExperimentReport {
    let catalog = Catalog::paper_skewed();
    let topo = Topology::star_chain(15);
    let algs = [Algorithm::Dp, Algorithm::Idp { k: 7 }, SDP];
    let rows = quality_rows_on(&catalog, session.config, topo, &algs);
    ExperimentReport {
        id: "extra-skewed",
        title: "Extra — Star-Chain-15 plan quality on skewed (exponential) data".into(),
        text: render_quality_table(
            "Extra: Skewed-data Plan Quality",
            &format!("{} (skewed)", topo.label()),
            &rows,
        ),
        markdown: markdown_quality_rows(&rows),
    }
}

/// `extra-topologies` — cycle and clique graphs ("similar in flavor").
pub fn extra_topologies(session: &Session) -> ExperimentReport {
    let algs = [Algorithm::Dp, Algorithm::Idp { k: 4 }, SDP];
    let mut text = String::new();
    let mut markdown = String::new();
    for topo in [Topology::Cycle(14), Topology::Clique(10)] {
        let rows = quality_rows_on(&session.catalog, session.config, topo, &algs);
        text.push_str(&render_quality_table(
            &format!("Extra ({}): Plan Quality", topo.label()),
            &topo.label(),
            &rows,
        ));
        text.push('\n');
        markdown.push_str(&format!("**{}**\n\n", topo.label()));
        markdown.push_str(&markdown_quality_rows(&rows));
        markdown.push('\n');
    }
    ExperimentReport {
        id: "extra-topologies",
        title: "Extra — Other Topologies (Cycle, Clique)".into(),
        text,
        markdown,
    }
}

/// `extra-idp-variants` — ballooning hybrid vs standard IDP1 vs the
/// randomized baselines, quality and effort on Star-Chain-15.
pub fn extra_idp_variants(session: &Session) -> ExperimentReport {
    let topo = Topology::star_chain(15);
    let algs = [
        Algorithm::Dp,
        Algorithm::Idp { k: 7 },
        Algorithm::IdpStandard { k: 7 },
        Algorithm::Idp { k: 4 },
        Algorithm::IdpStandard { k: 4 },
        SDP,
        Algorithm::ii(),
        Algorithm::sa(),
        Algorithm::Goo,
    ];
    let n = session.config.instances;
    let runner = Runner::new(&session.catalog, session.config);
    let reference = runner.run(topo, Algorithm::Dp);

    let mut text = String::from("Extra: IDP variants and randomized baselines (Star-Chain-15)\n");
    text.push_str(&format!(
        "{:<12} {:>8} {:>8} {:>14} {:>12}\n",
        "Technique", "rho", "worst", "plans costed", "time (ms)"
    ));
    let mut markdown =
        String::from("| Technique | ρ | W | Plans costed | Time (ms) |\n|---|---|---|---|---|\n");
    for a in algs {
        let outcomes = if a == Algorithm::Dp {
            reference.clone()
        } else {
            runner.run(topo, a)
        };
        let ratios = crate::runner::cost_ratios(&reference, &outcomes);
        let rho = geometric_mean_ratio(&ratios);
        let worst = ratios.iter().copied().fold(1.0f64, f64::max);
        let o = overheads(&outcomes);
        text.push_str(&format!(
            "{:<12} {:>8.3} {:>8.2} {:>14} {:>12.3}\n",
            a.label(),
            rho,
            worst,
            o.plans_costed_sci(),
            o.time_s * 1000.0
        ));
        markdown.push_str(&format!(
            "| {} | {:.3} | {:.2} | {} | {:.3} |\n",
            a.label(),
            rho,
            worst,
            o.plans_costed_sci(),
            o.time_s * 1000.0
        ));
    }
    let _ = n;
    ExperimentReport {
        id: "extra-idp-variants",
        title: "Extra — IDP Variants and Randomized Baselines".into(),
        text,
        markdown,
    }
}

/// `extra-robustness` — the title's word, measured: optimize under
/// *sampled* (noisy) statistics, then evaluate the chosen plans under
/// the *true* analytic model. A robust heuristic should lose little
/// quality to statistics noise; a brittle one compounds it.
pub fn extra_robustness(session: &Session) -> ExperimentReport {
    use sdp_core::{recost, Optimizer};
    use sdp_engine::{analyze_database, scaled_catalog, Database, DEFAULT_SAMPLE};
    use sdp_query::{infer_transitive_edges, QueryGenerator};

    let analytic = scaled_catalog(12, 2000, 7);
    let db = Database::generate(&analytic, 42);
    let mut sampled = analytic.clone();
    // A deliberately small sample (PostgreSQL's would be ~3000 rows)
    // so the statistics noise is material.
    let _ = DEFAULT_SAMPLE;
    sampled.replace_stats(analyze_database(&analytic, &db, 150, 99));

    let true_model = sdp_cost::CostModel::with_defaults(&analytic);
    let algs = [Algorithm::Dp, Algorithm::Idp { k: 4 }, SDP, Algorithm::Goo];
    let instances = session.config.instances.min(50) as u64;
    let topo = Topology::star_chain(10);

    // ratios[a][k] = true cost of algorithm a's sampled-stats plan /
    // true cost of the analytic-stats DP optimum, on instance k.
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); algs.len()];
    let generator =
        QueryGenerator::new(&analytic, topo, session.config.seed).with_filter_probability(0.8);
    for k in 0..instances {
        let q = generator.instance(k);
        let mut rewritten = q.clone();
        infer_transitive_edges(&mut rewritten.graph);
        let classes = rewritten.equiv_classes();
        let truth = Optimizer::new(&analytic)
            .optimize(&q, Algorithm::Dp)
            .expect("8-way DP fits")
            .cost;
        for (i, &a) in algs.iter().enumerate() {
            let plan = Optimizer::new(&sampled)
                .optimize(&q, a)
                .expect("sampled-stats optimization fits");
            let true_cost = recost(&plan.root, &true_model, &rewritten.graph, &classes);
            ratios[i].push((true_cost / truth).max(1.0));
        }
    }

    let mut text = String::from(
        "Extra: Robustness to statistics noise (Star-Chain-10 with filters, 150-row ANALYZE sample)\n",
    );
    text.push_str(&format!(
        "{:<10} {:>10} {:>10}\n",
        "Technique", "rho(true)", "worst"
    ));
    let mut markdown = String::from("| Technique | ρ under true model | worst |\n|---|---|---|\n");
    for (i, a) in algs.iter().enumerate() {
        let rho = geometric_mean_ratio(&ratios[i]);
        let worst = ratios[i].iter().copied().fold(1.0f64, f64::max);
        text.push_str(&format!(
            "{:<10} {:>10.3} {:>10.2}\n",
            a.label(),
            rho,
            worst
        ));
        markdown.push_str(&format!("| {} | {:.3} | {:.2} |\n", a.label(), rho, worst));
    }
    text.push_str(
        "\n(Plans are chosen with statistics re-derived from a 150-row sample of the\n\
         materialized data, then costed under the exact analytic model.)\n",
    );
    ExperimentReport {
        id: "extra-robustness",
        title: "Extra — Robustness to Statistics Noise".into(),
        text,
        markdown,
    }
}
