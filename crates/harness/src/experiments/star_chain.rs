//! Star-Chain experiments: Tables 1.1–1.4, Figure 1.2, Table 3.5
//! (ordered variants) and Table 3.6 (local vs global pruning).

use sdp_core::{Algorithm, Partitioning, SdpConfig};
use sdp_query::Topology;

use crate::runner::{overheads, quality_against, RunOutcome, Runner};
use crate::tables::{
    markdown_overhead_rows, markdown_quality_rows, render_overhead_table, render_quality_table,
    OverheadRow, QualityRow,
};

use super::{ExperimentReport, Session};

const SDP: Algorithm = Algorithm::Sdp(SdpConfig {
    partitioning: Partitioning::RootHub,
    skyline: sdp_core::SkylineOption::PairwiseUnion,
});

/// Build quality rows for a topology: DP as reference when feasible,
/// otherwise SDP (the paper's convention for scaled graphs).
pub(super) fn quality_rows(
    session: &Session,
    topology: Topology,
    algorithms: &[Algorithm],
    ordered: bool,
    instances: usize,
) -> Vec<QualityRow> {
    let runs: Vec<(Algorithm, std::rc::Rc<Vec<RunOutcome>>)> = algorithms
        .iter()
        .map(|&a| (a, session.outcomes(topology, a, ordered, instances)))
        .collect();

    let dp_feasible = runs
        .iter()
        .find(|(a, _)| *a == Algorithm::Dp)
        .map(|(_, o)| !Runner::is_infeasible(o))
        .unwrap_or(false);
    let reference: std::rc::Rc<Vec<RunOutcome>> = if dp_feasible {
        runs.iter()
            .find(|(a, _)| *a == Algorithm::Dp)
            .map(|(_, o)| o.clone())
            .expect("DP present")
    } else {
        runs.iter()
            .find(|(a, _)| *a == SDP)
            .map(|(_, o)| o.clone())
            .expect("SDP always present")
    };

    runs.iter()
        .map(|(a, outcomes)| {
            let is_reference = (dp_feasible && *a == Algorithm::Dp) || (!dp_feasible && *a == SDP);
            let summary = if Runner::is_infeasible(outcomes) {
                None
            } else if is_reference {
                Some(sdp_metrics::QualitySummary::reference(outcomes.len()))
            } else {
                quality_against(&reference, outcomes)
            };
            QualityRow {
                technique: a.label(),
                summary,
                is_reference,
            }
        })
        .collect()
}

pub(super) fn overhead_rows(
    session: &Session,
    topology: Topology,
    algorithms: &[Algorithm],
    ordered: bool,
    instances: usize,
) -> Vec<OverheadRow> {
    algorithms
        .iter()
        .map(|&a| {
            let outcomes = session.outcomes(topology, a, ordered, instances);
            let summary = if Runner::is_infeasible(&outcomes) {
                None
            } else {
                Some(overheads(&outcomes))
            };
            OverheadRow {
                technique: a.label(),
                summary,
            }
        })
        .collect()
}

/// Table 1.1 — Star-Chain-15 plan quality (DP, IDP(7), SDP).
pub fn table_1_1(session: &Session) -> ExperimentReport {
    let topo = Topology::star_chain(15);
    let algs = [Algorithm::Dp, Algorithm::Idp { k: 7 }, SDP];
    let rows = quality_rows(session, topo, &algs, false, session.config.instances);
    ExperimentReport {
        id: "table-1-1",
        title: "Table 1.1 — Plan Quality (DP, IDP, SDP) on Star-Chain-15".into(),
        text: render_quality_table("Table 1.1: Plan Quality", &topo.label(), &rows),
        markdown: markdown_quality_rows(&rows),
    }
}

/// Table 1.2 — Star-Chain-15 optimization overheads.
pub fn table_1_2(session: &Session) -> ExperimentReport {
    let topo = Topology::star_chain(15);
    let algs = [Algorithm::Dp, Algorithm::Idp { k: 7 }, SDP];
    let rows = overhead_rows(session, topo, &algs, false, session.config.instances);
    ExperimentReport {
        id: "table-1-2",
        title: "Table 1.2 — Optimization Overheads on Star-Chain-15".into(),
        text: render_overhead_table("Table 1.2: Optimization Overheads", &topo.label(), &rows),
        markdown: markdown_overhead_rows(&rows),
    }
}

/// Figure 1.2 — plan quality ρ versus optimization effort.
pub fn figure_1_2(session: &Session) -> ExperimentReport {
    let topo = Topology::star_chain(15);
    let algs = [
        Algorithm::Dp,
        Algorithm::Idp { k: 4 },
        Algorithm::Idp { k: 7 },
        SDP,
        Algorithm::Goo,
        Algorithm::ii(),
        Algorithm::sa(),
    ];
    let n = session.config.instances;
    let quality = quality_rows(session, topo, &algs, false, n);
    let cost = overhead_rows(session, topo, &algs, false, n);

    let mut text =
        String::from("Figure 1.2: Plan Quality (rho) vs. Effort Tradeoff (Star-Chain-15)\n");
    let mut markdown =
        String::from("| Technique | Time (s) | Plans costed | ρ |\n|---|---|---|---|\n");
    text.push_str(&format!(
        "{:<10} {:>12} {:>14} {:>8}\n",
        "Technique", "Time (s)", "Costing", "rho"
    ));
    for (q, o) in quality.iter().zip(&cost) {
        match (&q.summary, &o.summary) {
            (Some(qs), Some(os)) => {
                text.push_str(&format!(
                    "{:<10} {:>12.4} {:>14} {:>8.3}\n",
                    q.technique,
                    os.time_s,
                    os.plans_costed_sci(),
                    qs.rho
                ));
                markdown.push_str(&format!(
                    "| {} | {:.4} | {} | {:.3} |\n",
                    q.technique,
                    os.time_s,
                    os.plans_costed_sci(),
                    qs.rho
                ));
            }
            _ => {
                text.push_str(&format!(
                    "{:<10} {:>12} {:>14} {:>8}\n",
                    q.technique, "*", "*", "*"
                ));
                markdown.push_str(&format!("| {} | * | * | * |\n", q.technique));
            }
        }
    }
    // Also render the actual figure as SVG, like the paper's plot:
    // x = plans costed (log), y = ρ.
    let points: Vec<crate::svg::ScatterPoint> = quality
        .iter()
        .zip(&cost)
        .filter_map(|(q, o)| match (&q.summary, &o.summary) {
            (Some(qs), Some(os)) if os.plans_costed > 0.0 => Some(crate::svg::ScatterPoint {
                label: q.technique.clone(),
                x: os.plans_costed,
                y: qs.rho,
            }),
            _ => None,
        })
        .collect();
    if !points.is_empty() {
        let svg = crate::svg::scatter_svg(
            "Plan Quality vs. Effort Tradeoff (Star-Chain-15)",
            "plans costed (log scale)",
            "plan quality rho",
            &points,
        );
        if let Err(e) = std::fs::write("figure_1_2.svg", &svg) {
            text.push_str(&format!("(could not write figure_1_2.svg: {e})\n"));
        } else {
            text.push_str("(figure written to figure_1_2.svg)\n");
        }
    }
    ExperimentReport {
        id: "figure-1-2",
        title: "Figure 1.2 — Plan Quality (ρ) vs. Effort Tradeoff".into(),
        text,
        markdown,
    }
}

/// Table 1.3 — scaled Star-Chain-23 plan quality (SDP as ideal).
pub fn table_1_3(session: &Session) -> ExperimentReport {
    let topo = Topology::star_chain(23);
    let algs = [Algorithm::Dp, Algorithm::Idp { k: 7 }, SDP];
    let rows = quality_rows(session, topo, &algs, false, session.heavy_instances());
    ExperimentReport {
        id: "table-1-3",
        title: "Table 1.3 — Scaled Join Graph (Star-Chain-23): Plan Quality".into(),
        text: render_quality_table(
            "Table 1.3: Scaled Join Graph Plan Quality",
            &topo.label(),
            &rows,
        ),
        markdown: markdown_quality_rows(&rows),
    }
}

/// Table 1.4 — scaled Star-Chain-23 overheads.
pub fn table_1_4(session: &Session) -> ExperimentReport {
    let topo = Topology::star_chain(23);
    let algs = [Algorithm::Dp, Algorithm::Idp { k: 7 }, SDP];
    let rows = overhead_rows(session, topo, &algs, false, session.heavy_instances());
    ExperimentReport {
        id: "table-1-4",
        title: "Table 1.4 — Scaled Join Graph (Star-Chain-23): Overheads".into(),
        text: render_overhead_table(
            "Table 1.4: Scaled Join Graph Overheads",
            &topo.label(),
            &rows,
        ),
        markdown: markdown_overhead_rows(&rows),
    }
}

/// Table 3.5 — ordered Star-Chain plan quality (15, 20, 23).
pub fn table_3_5(session: &Session) -> ExperimentReport {
    let algs = [
        Algorithm::Dp,
        Algorithm::Idp { k: 7 },
        Algorithm::Idp { k: 4 },
        SDP,
    ];
    let mut text = String::new();
    let mut markdown = String::new();
    for n in [15usize, 20, 23] {
        let topo = Topology::star_chain(n);
        let instances = if n >= 20 {
            session.heavy_instances()
        } else {
            session.config.instances
        };
        let rows = quality_rows(session, topo, &algs, true, instances);
        text.push_str(&render_quality_table(
            &format!(
                "Table 3.5 ({}): Ordered Star-Chain Plan Quality",
                topo.label()
            ),
            &topo.label(),
            &rows,
        ));
        text.push('\n');
        markdown.push_str(&format!("**{}**\n\n", topo.label()));
        markdown.push_str(&markdown_quality_rows(&rows));
        markdown.push('\n');
    }
    ExperimentReport {
        id: "table-3-5",
        title: "Table 3.5 — Ordered Star-Chain: Plan Quality".into(),
        text,
        markdown,
    }
}

/// Table 3.6 — local (hub-partitioned) vs global skyline pruning on
/// Star-Chain-20.
pub fn table_3_6(session: &Session) -> ExperimentReport {
    let topo = Topology::star_chain(20);
    let global = Algorithm::Sdp(SdpConfig {
        partitioning: Partitioning::Global,
        skyline: sdp_core::SkylineOption::PairwiseUnion,
    });
    let algs = [Algorithm::Dp, global, SDP];
    let instances = session.heavy_instances();
    let rows = quality_rows(session, topo, &algs, false, instances);
    // Relabel to the paper's names.
    let rows: Vec<QualityRow> = rows
        .into_iter()
        .map(|mut r| {
            if r.technique.contains("Global") {
                r.technique = "SDP/Global".into();
            } else if r.technique == "SDP" {
                r.technique = "SDP/Local".into();
            }
            r
        })
        .collect();
    ExperimentReport {
        id: "table-3-6",
        title: "Table 3.6 — Local vs Global Pruning (Star-Chain-20)".into(),
        text: render_quality_table("Table 3.6: Local vs Global Pruning", &topo.label(), &rows),
        markdown: markdown_quality_rows(&rows),
    }
}
