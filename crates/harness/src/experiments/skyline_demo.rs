//! Skyline-function experiments: the worked pruning example of
//! Table 2.2 and the Option 1 / Option 2 ablation of Table 2.3.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use sdp_catalog::{Catalog, ColId, RelId};
use sdp_core::{
    dp::run_levels, Algorithm, Budget, EnumContext, Optimizer, SdpConfig, SkylineOption,
};
use sdp_cost::CostModel;
use sdp_metrics::geometric_mean_ratio;
use sdp_query::{ColRef, JoinEdge, JoinGraph, Query, RelSet};
use sdp_skyline::multiway::pairwise_skyline_membership;

use super::{ExperimentReport, Session};

/// Build an instance of the paper's Figure 2.1 example join graph:
/// nine relations, hub `0` star-joins `1..=4`, a chain `4–5–6`, and
/// hub `6` star-joins `7` and `8`. Spoke/chain sides join on their
/// indexed columns, as in the benchmark queries.
pub fn figure_2_1_query(catalog: &Catalog, seed: u64) -> Query {
    let mut rng = StdRng::seed_from_u64(seed);
    let largest = catalog.largest_relation();
    let mut pool: Vec<RelId> = catalog
        .relations()
        .iter()
        .map(|r| r.id)
        .filter(|&id| id != largest)
        .collect();
    pool.shuffle(&mut rng);
    let mut bindings = vec![largest];
    bindings.extend(pool.into_iter().take(8));

    let pairs = [
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (4, 5),
        (5, 6),
        (6, 7),
        (6, 8),
    ];
    let mut next_fresh = [0u16; 9];
    let mut fresh = |node: usize, avoid: Option<ColId>| -> ColId {
        loop {
            let c = ColId(next_fresh[node]);
            next_fresh[node] += 1;
            if Some(c) != avoid {
                return c;
            }
        }
    };
    let edges = pairs
        .map(|(a, b)| {
            let idx = catalog.relation(bindings[b]).expect("valid").indexed_column;
            let ca = fresh(a, None);
            JoinEdge::new(ColRef::new(a, ca), ColRef::new(b, idx))
        })
        .to_vec();
    Query::new(JoinGraph::new(bindings, edges))
}

/// Table 2.2 — multiway skyline pruning, demonstrated twice:
/// first on the paper's exact published feature vectors, then live on
/// a level-3 PruneGroup partition produced by our own optimizer over
/// the Figure 2.1 graph.
pub fn table_2_2(session: &Session) -> ExperimentReport {
    let mut text = String::from("Table 2.2: Multi-way Skyline Pruning\n\n");
    let mut markdown = String::new();

    // --- Part 1: the paper's published vectors --------------------------
    let labels = ["123", "125", "135", "145", "156"];
    let vectors = [
        vec![187_638.0, 49_386.0, 3.9e-5],
        vec![122_879.0, 52_132.0, 1.0e-5],
        vec![242_620.0, 56_021.0, 1.0e-5],
        vec![241_562.0, 55_388.0, 6.65e-6],
        vec![385_375.0, 52_632.0, 4.5e-6],
    ];
    text.push_str("(a) Paper's published Prune Group 1 vectors:\n");
    text.push_str(&format!(
        "{:<6} {:>12} {:>12} {:>10}  {:>3} {:>3} {:>3}  {}\n",
        "JCR", "Rows", "Cost", "Sel", "RC", "CS", "RS", "Survives"
    ));
    markdown.push_str("**Paper vectors** (RC/CS/RS skyline membership):\n\n");
    markdown.push_str("| JCR | Rows | Cost | Sel | RC | CS | RS | Survives |\n|---|---|---|---|---|---|---|---|\n");
    let membership = pairwise_skyline_membership(&vectors);
    // Projections arrive as (0,1)=RC, (0,2)=RS, (1,2)=CS.
    let rc = &membership[0].1;
    let rs = &membership[1].1;
    let cs = &membership[2].1;
    for (i, label) in labels.iter().enumerate() {
        let mark = |v: &Vec<usize>| if v.contains(&i) { "Y" } else { "-" };
        let survives = rc.contains(&i) || cs.contains(&i) || rs.contains(&i);
        text.push_str(&format!(
            "{:<6} {:>12.0} {:>12.0} {:>10.2e}  {:>3} {:>3} {:>3}  {}\n",
            label,
            vectors[i][0],
            vectors[i][1],
            vectors[i][2],
            mark(rc),
            mark(cs),
            mark(rs),
            if survives { "yes" } else { "PRUNED" }
        ));
        markdown.push_str(&format!(
            "| {} | {:.0} | {:.0} | {:.2e} | {} | {} | {} | {} |\n",
            label,
            vectors[i][0],
            vectors[i][1],
            vectors[i][2],
            mark(rc),
            mark(cs),
            mark(rs),
            if survives { "yes" } else { "pruned" }
        ));
    }

    // --- Part 2: live vectors from our optimizer ------------------------
    let query = figure_2_1_query(&session.catalog, session.config.seed);
    let model = CostModel::with_defaults(&session.catalog);
    let mut ctx = EnumContext::new(&query, &model, Budget::unlimited());
    for i in 0..9 {
        ctx.ensure_base_group(i);
    }
    let atoms: Vec<RelSet> = (0..9).map(RelSet::single).collect();
    let table = run_levels(&mut ctx, &atoms, 3, None).expect("small DP");
    let hub0 = 0usize;
    let partition: Vec<RelSet> = table.sets_at(3).filter(|s| s.contains(hub0)).collect();
    let features: Vec<Vec<f64>> = partition
        .iter()
        .map(|&s| ctx.memo.get(s).expect("live").feature_vector().to_vec())
        .collect();
    let live = pairwise_skyline_membership(&features);
    let (lrc, lrs, lcs) = (&live[0].1, &live[1].1, &live[2].1);
    text.push_str(&format!(
        "\n(b) Live level-3 PruneGroup partition on root hub 0 (Figure 2.1 instance, {} JCRs):\n",
        partition.len()
    ));
    for (i, s) in partition.iter().enumerate() {
        let survives = lrc.contains(&i) || lcs.contains(&i) || lrs.contains(&i);
        text.push_str(&format!(
            "{:<12} R={:<12.0} C={:<12.0} S={:<10.2e} {}\n",
            format!("{s}"),
            features[i][0],
            features[i][1],
            features[i][2],
            if survives { "survives" } else { "PRUNED" }
        ));
    }
    let survivors = sdp_skyline::pairwise_union_skyline(&features).len();
    markdown.push_str(&format!(
        "\nLive run: level-3 hub partition of a Figure 2.1 instance had {} JCRs, {} survived the RC∪CS∪RS skyline.\n",
        partition.len(),
        survivors
    ));

    ExperimentReport {
        id: "table-2-2",
        title: "Table 2.2 — Multi-way Skyline Pruning (worked example)".into(),
        text,
        markdown,
    }
}

/// Table 2.3 — skyline Option 1 (full-vector) vs Option 2 (pairwise
/// union): JCRs processed and plan quality ρ. The paper quotes the
/// counts "for the example query" at a scale (1646 vs 862 JCRs) that
/// matches its Star-Chain-15 workload rather than the 9-relation
/// Figure 2.1 toy (whose levels are too small for the options to
/// differ), so the ablation runs on Star-Chain-15 instances.
pub fn table_2_3(session: &Session) -> ExperimentReport {
    let optimizer = Optimizer::new(&session.catalog).with_budget(session.config.budget);
    let option1 = Algorithm::Sdp(SdpConfig {
        skyline: SkylineOption::FullVector,
        ..SdpConfig::paper()
    });
    let option2 = Algorithm::Sdp(SdpConfig::paper());

    let mut jcrs = [0u64, 0u64];
    let mut ratios: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let instances = session.config.instances.min(50) as u64;
    let generator = sdp_query::QueryGenerator::new(
        &session.catalog,
        sdp_query::Topology::star_chain(15),
        session.config.seed,
    );
    for k in 0..instances {
        let q = generator.instance(k);
        let dp = optimizer
            .optimize(&q, Algorithm::Dp)
            .expect("15-way DP fits");
        for (i, alg) in [option1, option2].iter().enumerate() {
            let r = optimizer.optimize(&q, *alg).expect("SDP fits");
            jcrs[i] += r.stats.jcrs_processed;
            ratios[i].push((r.cost / dp.cost).max(1.0));
        }
    }
    let n = instances as f64;
    let rows = [
        (
            "Prune Option 1",
            jcrs[0] as f64 / n,
            geometric_mean_ratio(&ratios[0]),
        ),
        (
            "Prune Option 2",
            jcrs[1] as f64 / n,
            geometric_mean_ratio(&ratios[1]),
        ),
    ];

    let mut text = String::from("Table 2.3: Performance of Skyline Options (Star-Chain-15)\n");
    text.push_str(&format!(
        "{:<16} {:>16} {:>18}\n",
        "Option", "JCRs Processed", "Plan Quality (rho)"
    ));
    let mut markdown = String::from("| Option | JCRs processed (mean) | ρ |\n|---|---|---|\n");
    for (label, j, rho) in rows {
        text.push_str(&format!("{label:<16} {j:>16.0} {rho:>18.4}\n"));
        markdown.push_str(&format!("| {label} | {j:.0} | {rho:.4} |\n"));
    }

    ExperimentReport {
        id: "table-2-3",
        title: "Table 2.3 — Performance of Skyline Options".into(),
        text,
        markdown,
    }
}
