//! `extra-service-replay` — the service layer measured: replay a
//! repetitive workload through the resident optimizer daemon and
//! report how much enumeration work fingerprint caching and
//! single-flight coalescing amortize away.
//!
//! Production optimizers live or die by this number: the paper's
//! overhead tables price a *single* optimization, but a server sees
//! the same parametrized query shapes over and over, so the effective
//! per-request cost is the cold cost divided by the hit rate the
//! cache can sustain.

use std::sync::Arc;
use std::time::Instant;

use sdp_core::Algorithm;
use sdp_query::{Query, QueryGenerator, Topology};
use sdp_service::{Daemon, OptimizerService, ServiceConfig, ServiceRequest};

use super::{ExperimentReport, Session};

struct ReplayRow {
    workload: String,
    requests: u64,
    enumerations: u64,
    hits: u64,
    coalesced: u64,
    amortized_pct: f64,
    cold_plans: u64,
    throughput: f64,
}

fn replay_workload(
    session: &Session,
    topology: Topology,
    distinct: usize,
    requests: usize,
    clients: usize,
) -> ReplayRow {
    let service = Arc::new(OptimizerService::new(
        session.catalog.clone(),
        ServiceConfig {
            cache_capacity: 256,
            cache_shards: 4,
            parallelism: Some(1),
            enumerator: None,
            ..ServiceConfig::default()
        },
    ));
    let daemon = Daemon::spawn(Arc::clone(&service), clients);
    let generator = QueryGenerator::new(&session.catalog, topology, session.config.seed);
    let queries: Vec<Query> = (0..distinct as u64)
        .map(|k| generator.instance(k))
        .collect();

    let started = Instant::now();
    let tickets: Vec<_> = (0..requests)
        .map(|i| {
            let q = queries[i % distinct].clone();
            daemon.submit(ServiceRequest::query(q).with_algorithm(Algorithm::Dp))
        })
        .collect();
    for t in tickets {
        t.wait().expect("replayed request failed");
    }
    let elapsed = started.elapsed();
    let snap = service.counters_snapshot();
    daemon.shutdown();

    ReplayRow {
        workload: format!("{} x{distinct} queries", topology.label()),
        requests: snap.requests(),
        enumerations: snap.enumerations,
        hits: snap.hits,
        coalesced: snap.coalesced,
        amortized_pct: snap.amortized_rate() * 100.0,
        cold_plans: snap.plans_costed,
        throughput: requests as f64 / elapsed.as_secs_f64(),
    }
}

/// `extra-service-replay` — daemon workload replay: cache and
/// coalescing amortization on star and star-chain shapes.
pub fn extra_service_replay(session: &Session) -> ExperimentReport {
    let requests = (session.config.instances * 16).max(64);
    let rows = [
        replay_workload(session, Topology::Star(9), 4, requests, 4),
        replay_workload(session, Topology::star_chain(9), 4, requests, 4),
    ];

    let mut text = String::from(
        "Extra: Service replay — repeated-shape workload through the resident daemon\n",
    );
    text.push_str(&format!(
        "{:<28} {:>8} {:>6} {:>6} {:>9} {:>10} {:>11} {:>10}\n",
        "Workload", "requests", "enums", "hits", "coalesced", "amortized", "cold plans", "req/s"
    ));
    let mut markdown = String::from(
        "| Workload | requests | enumerations | hits | coalesced | amortized | cold plans costed | req/s |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for r in &rows {
        text.push_str(&format!(
            "{:<28} {:>8} {:>6} {:>6} {:>9} {:>9.1}% {:>11} {:>10.0}\n",
            r.workload,
            r.requests,
            r.enumerations,
            r.hits,
            r.coalesced,
            r.amortized_pct,
            r.cold_plans,
            r.throughput,
        ));
        markdown.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.1}% | {} | {:.0} |\n",
            r.workload,
            r.requests,
            r.enumerations,
            r.hits,
            r.coalesced,
            r.amortized_pct,
            r.cold_plans,
            r.throughput,
        ));
    }
    text.push_str(
        "\n(Each workload replays its request stream through a 4-worker daemon;\n\
         every query after the first appearance of its fingerprint is served\n\
         from the sharded plan cache or coalesced onto an in-flight\n\
         enumeration, so total plans costed stays at the cold-start cost.)\n",
    );
    ExperimentReport {
        id: "extra-service-replay",
        title: "Extra — Plan-Cache and Coalescing Amortization".into(),
        text,
        markdown,
    }
}
