//! One driver per paper table/figure. See DESIGN.md for the
//! experiment index.

pub mod calibration;
pub mod extensions;
pub mod service;
pub mod skyline_demo;
pub mod star;
pub mod star_chain;

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use sdp_catalog::Catalog;
use sdp_core::Algorithm;
use sdp_query::Topology;

use crate::runner::{ExperimentConfig, RunOutcome, Runner};

/// The output of one experiment: a console report and a markdown
/// fragment for `EXPERIMENTS.md`.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Stable experiment id (e.g. `"table-1-1"`).
    pub id: &'static str,
    /// Human title (e.g. `"Table 1.1 — Star-Chain-15 plan quality"`).
    pub title: String,
    /// Console rendering.
    pub text: String,
    /// Markdown rendering for EXPERIMENTS.md.
    pub markdown: String,
}

/// Shared state for a batch of experiments: the paper catalog and a
/// cache so `all` does not re-optimize identical configurations.
pub struct Session {
    /// The paper's 25-relation schema.
    pub catalog: Catalog,
    /// Base configuration (instances, seed, budget).
    pub config: ExperimentConfig,
    cache: RefCell<HashMap<String, Rc<Vec<RunOutcome>>>>,
}

impl Session {
    /// Create a session over the paper catalog.
    pub fn new(config: ExperimentConfig) -> Self {
        Session {
            catalog: Catalog::paper(),
            config,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// Instance count for heavyweight configurations (20+-relation
    /// graphs where exhaustive DP runs seconds per instance).
    pub fn heavy_instances(&self) -> usize {
        (self.config.instances / 4).max(5)
    }

    /// Run (or fetch cached) outcomes for a configuration.
    pub fn outcomes(
        &self,
        topology: Topology,
        algorithm: Algorithm,
        ordered: bool,
        instances: usize,
    ) -> Rc<Vec<RunOutcome>> {
        let key = format!("{topology}|{}|{ordered}|{instances}", algorithm.label());
        if let Some(hit) = self.cache.borrow().get(&key) {
            return hit.clone();
        }
        let cfg = ExperimentConfig {
            instances,
            ordered,
            ..self.config
        };
        let runner = Runner::new(&self.catalog, cfg);
        let outcomes = Rc::new(runner.run(topology, algorithm));
        self.cache.borrow_mut().insert(key, outcomes.clone());
        outcomes
    }
}

/// All experiment ids, in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table-1-1",
    "table-1-2",
    "figure-1-2",
    "table-1-3",
    "table-1-4",
    "table-2-1",
    "table-2-2",
    "table-2-3",
    "table-3-1",
    "table-3-2",
    "table-3-3",
    "table-3-4",
    "table-3-5",
    "table-3-6",
    "extra-skewed",
    "extra-topologies",
    "extra-idp-variants",
    "extra-robustness",
    "extra-service-replay",
];

/// Dispatch one experiment by id.
pub fn run_experiment(session: &Session, id: &str) -> Option<ExperimentReport> {
    Some(match id {
        "table-1-1" => star_chain::table_1_1(session),
        "table-1-2" => star_chain::table_1_2(session),
        "figure-1-2" => star_chain::figure_1_2(session),
        "table-1-3" => star_chain::table_1_3(session),
        "table-1-4" => star_chain::table_1_4(session),
        "table-2-1" => calibration::table_2_1(session),
        "table-2-2" => skyline_demo::table_2_2(session),
        "table-2-3" => skyline_demo::table_2_3(session),
        "table-3-1" => star::table_3_1(session),
        "table-3-2" => star::table_3_2(session),
        "table-3-3" => calibration::table_3_3(session),
        "table-3-4" => star::table_3_4(session),
        "table-3-5" => star_chain::table_3_5(session),
        "table-3-6" => star_chain::table_3_6(session),
        "extra-skewed" => extensions::extra_skewed(session),
        "extra-topologies" => extensions::extra_topologies(session),
        "extra-idp-variants" => extensions::extra_idp_variants(session),
        "extra-robustness" => extensions::extra_robustness(session),
        "extra-service-replay" => service::extra_service_replay(session),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentConfig;

    fn tiny_session() -> Session {
        Session::new(ExperimentConfig {
            instances: 2,
            ..ExperimentConfig::default()
        })
    }

    #[test]
    fn session_caches_identical_configurations() {
        let s = tiny_session();
        let a = s.outcomes(Topology::star_chain(6), Algorithm::Dp, false, 2);
        let b = s.outcomes(Topology::star_chain(6), Algorithm::Dp, false, 2);
        assert!(Rc::ptr_eq(&a, &b), "second call must hit the cache");
        let c = s.outcomes(Topology::star_chain(6), Algorithm::Dp, true, 2);
        assert!(!Rc::ptr_eq(&a, &c), "ordered variant is a different key");
    }

    #[test]
    fn every_experiment_id_dispatches() {
        let s = tiny_session();
        for id in ALL_EXPERIMENTS {
            // Only run the cheap ones end-to-end; for the rest, just
            // verify the id is known (dispatch would run them).
            if *id == "table-2-2" || *id == "extra-service-replay" {
                let report = run_experiment(&s, id).expect("known id");
                assert_eq!(report.id, *id);
                assert!(!report.text.is_empty());
                assert!(!report.markdown.is_empty());
            }
        }
        assert!(run_experiment(&s, "no-such-experiment").is_none());
    }

    #[test]
    fn heavy_instance_reduction_floors_at_five() {
        let s = Session::new(ExperimentConfig {
            instances: 8,
            ..ExperimentConfig::default()
        });
        assert_eq!(s.heavy_instances(), 5);
        let s = Session::new(ExperimentConfig {
            instances: 100,
            ..ExperimentConfig::default()
        });
        assert_eq!(s.heavy_instances(), 25);
    }

    #[test]
    fn worked_example_table_2_2_reproduces_the_paper() {
        let s = tiny_session();
        let report = skyline_demo::table_2_2(&s);
        // The paper's verdicts, verbatim.
        assert!(report.markdown.contains("| 135 |"));
        assert!(report.markdown.contains("pruned"));
        for survivor in ["123", "125", "145", "156"] {
            assert!(report.markdown.contains(&format!("| {survivor} |")));
        }
    }
}
