//! Pure-star experiments: Tables 3.1, 3.2 and the ordered variants of
//! Table 3.4.

use sdp_core::{Algorithm, SdpConfig};
use sdp_query::Topology;

use crate::tables::{
    markdown_overhead_rows, markdown_quality_rows, render_overhead_table, render_quality_table,
};

use super::star_chain::{overhead_rows, quality_rows};
use super::{ExperimentReport, Session};

const ALGS: [Algorithm; 4] = [
    Algorithm::Dp,
    Algorithm::Idp { k: 7 },
    Algorithm::Idp { k: 4 },
    Algorithm::Sdp(SdpConfig {
        partitioning: sdp_core::Partitioning::RootHub,
        skyline: sdp_core::SkylineOption::PairwiseUnion,
    }),
];

fn star_instances(session: &Session, n: usize) -> usize {
    if n >= 20 {
        session.heavy_instances()
    } else {
        session.config.instances
    }
}

/// Table 3.1 — Star plan quality at 15, 20 and 23 relations.
pub fn table_3_1(session: &Session) -> ExperimentReport {
    let mut text = String::new();
    let mut markdown = String::new();
    for n in [15usize, 20, 23] {
        let topo = Topology::Star(n);
        let rows = quality_rows(session, topo, &ALGS, false, star_instances(session, n));
        text.push_str(&render_quality_table(
            &format!("Table 3.1 ({}): Star Plan Quality", topo.label()),
            &topo.label(),
            &rows,
        ));
        text.push('\n');
        markdown.push_str(&format!("**{}**\n\n", topo.label()));
        markdown.push_str(&markdown_quality_rows(&rows));
        markdown.push('\n');
    }
    ExperimentReport {
        id: "table-3-1",
        title: "Table 3.1 — Star: Plan Quality".into(),
        text,
        markdown,
    }
}

/// Table 3.2 — Star optimization overheads at 15, 20 and 23
/// relations.
pub fn table_3_2(session: &Session) -> ExperimentReport {
    let mut text = String::new();
    let mut markdown = String::new();
    for n in [15usize, 20, 23] {
        let topo = Topology::Star(n);
        let rows = overhead_rows(session, topo, &ALGS, false, star_instances(session, n));
        text.push_str(&render_overhead_table(
            &format!("Table 3.2 ({}): Star Overheads", topo.label()),
            &topo.label(),
            &rows,
        ));
        text.push('\n');
        markdown.push_str(&format!("**{}**\n\n", topo.label()));
        markdown.push_str(&markdown_overhead_rows(&rows));
        markdown.push('\n');
    }
    ExperimentReport {
        id: "table-3-2",
        title: "Table 3.2 — Star: Optimization Overheads".into(),
        text,
        markdown,
    }
}

/// Table 3.4 — ordered Star plan quality at 15, 20 and 23 relations.
pub fn table_3_4(session: &Session) -> ExperimentReport {
    let mut text = String::new();
    let mut markdown = String::new();
    for n in [15usize, 20, 23] {
        let topo = Topology::Star(n);
        let rows = quality_rows(session, topo, &ALGS, true, star_instances(session, n));
        text.push_str(&render_quality_table(
            &format!("Table 3.4 ({}): Ordered Star Plan Quality", topo.label()),
            &topo.label(),
            &rows,
        ));
        text.push('\n');
        markdown.push_str(&format!("**{}**\n\n", topo.label()));
        markdown.push_str(&markdown_quality_rows(&rows));
        markdown.push('\n');
    }
    ExperimentReport {
        id: "table-3-4",
        title: "Table 3.4 — Ordered Star: Plan Quality".into(),
        text,
        markdown,
    }
}
