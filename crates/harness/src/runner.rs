//! Shared experiment machinery: run algorithms over instance streams,
//! aggregate quality and overheads.

use sdp_catalog::Catalog;
use sdp_core::{Algorithm, Budget, OptError, Optimizer, RunStats};
use sdp_metrics::{OverheadSample, OverheadSummary, QualitySummary};
use sdp_query::{QueryGenerator, Topology};

/// Configuration of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Query instances per configuration (paper tables use 100).
    pub instances: usize,
    /// Base RNG seed for the instance stream.
    pub seed: u64,
    /// Resource budget per optimization (paper: 1 GB memory model).
    pub budget: Budget,
    /// Use the ordered query variants (`ORDER BY` a join column).
    pub ordered: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            instances: 100,
            seed: 0x5d9_2007,
            budget: Budget::default(),
            ordered: false,
        }
    }
}

impl ExperimentConfig {
    /// Reduced-instance configuration for smoke runs.
    pub fn quick() -> Self {
        ExperimentConfig {
            instances: 10,
            ..ExperimentConfig::default()
        }
    }

    /// Same configuration with the ordered query variants.
    pub fn ordered(mut self) -> Self {
        self.ordered = true;
        self
    }

    /// Same configuration with a different instance count.
    pub fn with_instances(mut self, n: usize) -> Self {
        self.instances = n;
        self
    }
}

/// Result of optimizing one query instance with one algorithm.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// Optimization completed.
    Plan {
        /// Estimated cost of the chosen plan.
        cost: f64,
        /// Overhead counters.
        stats: RunStats,
    },
    /// Budget exceeded — the paper's `*` cells.
    Infeasible(OptError),
}

impl RunOutcome {
    /// Plan cost if feasible.
    pub fn cost(&self) -> Option<f64> {
        match self {
            RunOutcome::Plan { cost, .. } => Some(*cost),
            RunOutcome::Infeasible(_) => None,
        }
    }

    /// Run statistics if feasible.
    pub fn stats(&self) -> Option<&RunStats> {
        match self {
            RunOutcome::Plan { stats, .. } => Some(stats),
            RunOutcome::Infeasible(_) => None,
        }
    }
}

/// Runs configurations over a catalog.
#[derive(Debug)]
pub struct Runner<'a> {
    catalog: &'a Catalog,
    config: ExperimentConfig,
}

impl<'a> Runner<'a> {
    /// Create a runner.
    pub fn new(catalog: &'a Catalog, config: ExperimentConfig) -> Self {
        Runner { catalog, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> ExperimentConfig {
        self.config
    }

    /// Optimize every instance of `topology` with `algorithm`.
    ///
    /// Instance `k` of the stream is identical across algorithms
    /// (same seed), so per-instance cost ratios are meaningful.
    pub fn run(&self, topology: Topology, algorithm: Algorithm) -> Vec<RunOutcome> {
        let generator = QueryGenerator::new(self.catalog, topology, self.config.seed);
        let optimizer = Optimizer::new(self.catalog).with_budget(self.config.budget);
        let mut outcomes = Vec::with_capacity(self.config.instances);
        for k in 0..self.config.instances as u64 {
            let query = if self.config.ordered {
                generator.ordered_instance(k)
            } else {
                generator.instance(k)
            };
            match optimizer.optimize(&query, algorithm) {
                Ok(plan) => outcomes.push(RunOutcome::Plan {
                    cost: plan.cost,
                    stats: plan.stats,
                }),
                Err(e) => {
                    // Infeasibility is structural (the memory wall does
                    // not depend on which relations fill the template):
                    // one failure condemns the whole configuration, so
                    // skip the remaining instances — exactly how the
                    // paper reports a single `*` per configuration.
                    for _ in k..self.config.instances as u64 {
                        outcomes.push(RunOutcome::Infeasible(e.clone()));
                    }
                    break;
                }
            }
        }
        outcomes
    }

    /// Whether a configuration should be reported as the paper's `*`:
    /// infeasible on any instance (the paper's infeasibility is
    /// structural — memory exhaustion does not depend on which
    /// relations fill the template, so one failure condemns the
    /// configuration).
    pub fn is_infeasible(outcomes: &[RunOutcome]) -> bool {
        outcomes.iter().any(|o| o.cost().is_none())
    }
}

/// Per-instance cost ratios of `candidate` against `reference`,
/// skipping instances where either side was infeasible.
pub fn cost_ratios(reference: &[RunOutcome], candidate: &[RunOutcome]) -> Vec<f64> {
    reference
        .iter()
        .zip(candidate)
        .filter_map(|(r, c)| match (r.cost(), c.cost()) {
            (Some(rc), Some(cc)) => {
                // Guard against rounding making the candidate
                // infinitesimally "better" than the reference.
                Some((cc / rc).max(1.0))
            }
            _ => None,
        })
        .collect()
}

/// Quality summary of `candidate` against `reference`; `None` when no
/// instance pair was feasible.
pub fn quality_against(
    reference: &[RunOutcome],
    candidate: &[RunOutcome],
) -> Option<QualitySummary> {
    let ratios = cost_ratios(reference, candidate);
    if ratios.is_empty() {
        None
    } else {
        Some(QualitySummary::from_ratios(&ratios))
    }
}

/// Overhead summary over the feasible runs of a configuration.
pub fn overheads(outcomes: &[RunOutcome]) -> OverheadSummary {
    let samples: Vec<OverheadSample> = outcomes
        .iter()
        .filter_map(|o| o.stats())
        .map(|s| OverheadSample {
            memory_bytes: s.peak_model_bytes,
            elapsed: s.elapsed,
            plans_costed: s.plans_costed,
        })
        .collect();
    OverheadSummary::from_samples(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_core::SdpConfig;

    #[test]
    fn runner_produces_per_instance_outcomes() {
        let cat = Catalog::paper();
        let cfg = ExperimentConfig {
            instances: 3,
            ..ExperimentConfig::default()
        };
        let runner = Runner::new(&cat, cfg);
        let outcomes = runner.run(Topology::star_chain(8), Algorithm::Dp);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.cost().is_some()));
    }

    #[test]
    fn ratios_pair_instances() {
        let cat = Catalog::paper();
        let cfg = ExperimentConfig {
            instances: 4,
            ..ExperimentConfig::default()
        };
        let runner = Runner::new(&cat, cfg);
        let dp = runner.run(Topology::star_chain(8), Algorithm::Dp);
        let sdp = runner.run(Topology::star_chain(8), Algorithm::Sdp(SdpConfig::paper()));
        let ratios = cost_ratios(&dp, &sdp);
        assert_eq!(ratios.len(), 4);
        assert!(ratios.iter().all(|&r| r >= 1.0));
        let q = quality_against(&dp, &sdp).unwrap();
        assert!(q.rho >= 1.0);
    }

    #[test]
    fn infeasible_runs_detected() {
        let cat = Catalog::paper();
        let cfg = ExperimentConfig {
            instances: 1,
            budget: Budget::with_memory(1 << 16),
            ..ExperimentConfig::default()
        };
        let runner = Runner::new(&cat, cfg);
        let dp = runner.run(Topology::Star(12), Algorithm::Dp);
        assert!(Runner::is_infeasible(&dp));
        assert!(quality_against(&dp, &dp).is_none());
        assert_eq!(overheads(&dp).runs, 0);
    }
}

#[cfg(test)]
mod short_circuit_tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn infeasibility_short_circuits_the_instance_loop() {
        let cat = Catalog::paper();
        let cfg = ExperimentConfig {
            instances: 50,
            budget: Budget::with_memory(1 << 16),
            ..ExperimentConfig::default()
        };
        let runner = Runner::new(&cat, cfg);
        let started = Instant::now();
        let outcomes = runner.run(Topology::Star(14), sdp_core::Algorithm::Dp);
        // All 50 slots filled with the structural failure…
        assert_eq!(outcomes.len(), 50);
        assert!(outcomes.iter().all(|o| o.cost().is_none()));
        // …after optimizing only one instance.
        assert!(
            started.elapsed().as_secs_f64() < 10.0,
            "short-circuit did not engage"
        );
    }
}
