//! Hand-rolled SVG scatter plots — enough to regenerate the paper's
//! Figure 1.2 ("Plan Quality vs. Effort Tradeoff") as an actual
//! figure, with no plotting dependency.

use std::fmt::Write as _;

/// One labelled point of a scatter plot.
#[derive(Debug, Clone)]
pub struct ScatterPoint {
    /// Series label drawn next to the marker.
    pub label: String,
    /// X value (plotted on a log10 axis).
    pub x: f64,
    /// Y value (linear axis).
    pub y: f64,
}

/// Render a log-x scatter plot as a standalone SVG document.
///
/// # Panics
/// Panics if `points` is empty or any x is non-positive (log axis).
pub fn scatter_svg(title: &str, x_label: &str, y_label: &str, points: &[ScatterPoint]) -> String {
    assert!(!points.is_empty(), "no points to plot");
    assert!(
        points.iter().all(|p| p.x > 0.0 && p.y.is_finite()),
        "log-x plot needs positive x values"
    );
    const W: f64 = 640.0;
    const H: f64 = 420.0;
    const M: f64 = 64.0; // margin

    let (mut lx_min, mut lx_max) = (f64::MAX, f64::MIN);
    let (mut y_min, mut y_max) = (f64::MAX, f64::MIN);
    for p in points {
        lx_min = lx_min.min(p.x.log10());
        lx_max = lx_max.max(p.x.log10());
        y_min = y_min.min(p.y);
        y_max = y_max.max(p.y);
    }
    // Pad the ranges so markers do not sit on the frame.
    let (lx_min, lx_max) = (lx_min.floor(), lx_max.ceil().max(lx_min.floor() + 1.0));
    let y_pad = ((y_max - y_min) * 0.15).max(0.05);
    let (y_min, y_max) = ((y_min - y_pad).min(1.0 - y_pad), y_max + y_pad);

    let sx = |x: f64| M + (x.log10() - lx_min) / (lx_max - lx_min) * (W - 2.0 * M);
    let sy = |y: f64| H - M - (y - y_min) / (y_max - y_min) * (H - 2.0 * M);

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"#
    );
    let _ = writeln!(
        out,
        r#"<rect width="{W}" height="{H}" fill="white"/>
<text x="{tx}" y="24" text-anchor="middle" font-family="sans-serif" font-size="15" font-weight="bold">{title}</text>"#,
        tx = W / 2.0
    );
    // Axes.
    let _ = writeln!(
        out,
        r#"<line x1="{M}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/>
<line x1="{M}" y1="{M}" x2="{M}" y2="{y0}" stroke="black"/>"#,
        y0 = H - M,
        x1 = W - M
    );
    // X ticks at powers of ten.
    let mut d = lx_min as i64;
    while d as f64 <= lx_max {
        let x = sx(10f64.powi(d as i32));
        let _ = writeln!(
            out,
            r#"<line x1="{x}" y1="{y0}" x2="{x}" y2="{y2}" stroke="black"/>
<text x="{x}" y="{ty}" text-anchor="middle" font-family="sans-serif" font-size="11">1e{d}</text>"#,
            y0 = H - M,
            y2 = H - M + 5.0,
            ty = H - M + 18.0
        );
        d += 1;
    }
    // Y ticks: 5 even steps.
    for i in 0..=4 {
        let v = y_min + (y_max - y_min) * i as f64 / 4.0;
        let y = sy(v);
        let _ = writeln!(
            out,
            r#"<line x1="{x2}" y1="{y}" x2="{M}" y2="{y}" stroke="black"/>
<text x="{tx}" y="{ty}" text-anchor="end" font-family="sans-serif" font-size="11">{v:.2}</text>"#,
            x2 = M - 5.0,
            tx = M - 8.0,
            ty = y + 4.0
        );
    }
    // Axis labels.
    let _ = writeln!(
        out,
        r#"<text x="{tx}" y="{ty}" text-anchor="middle" font-family="sans-serif" font-size="12">{x_label}</text>
<text x="18" y="{ly}" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 18 {ly})">{y_label}</text>"#,
        tx = W / 2.0,
        ty = H - 16.0,
        ly = H / 2.0
    );
    // Points.
    const COLORS: [&str; 8] = [
        "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2", "#17becf",
    ];
    for (i, p) in points.iter().enumerate() {
        let (x, y) = (sx(p.x), sy(p.y));
        let color = COLORS[i % COLORS.len()];
        let _ = writeln!(
            out,
            r#"<circle cx="{x}" cy="{y}" r="5" fill="{color}"/>
<text x="{lx}" y="{lyy}" font-family="sans-serif" font-size="11">{label}</text>"#,
            lx = x + 8.0,
            lyy = y + 4.0,
            label = p.label
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Vec<ScatterPoint> {
        vec![
            ScatterPoint {
                label: "DP".into(),
                x: 3.4e5,
                y: 1.0,
            },
            ScatterPoint {
                label: "SDP".into(),
                x: 8.8e3,
                y: 1.04,
            },
            ScatterPoint {
                label: "GOO".into(),
                x: 2.8e2,
                y: 1.14,
            },
        ]
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let svg = scatter_svg("Figure 1.2", "plans costed", "rho", &sample_points());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 3);
        for label in ["DP", "SDP", "GOO"] {
            assert!(svg.contains(&format!(">{label}</text>")));
        }
        // Log ticks cover the range 1e2 .. 1e6.
        assert!(svg.contains(">1e2<"));
        assert!(svg.contains(">1e5<") || svg.contains(">1e6<"));
    }

    #[test]
    fn points_are_inside_the_frame() {
        let svg = scatter_svg("t", "x", "y", &sample_points());
        for part in svg.split("<circle cx=\"").skip(1) {
            let cx: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=640.0).contains(&cx), "cx {cx}");
        }
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn empty_input_rejected() {
        let _ = scatter_svg("t", "x", "y", &[]);
    }

    #[test]
    #[should_panic(expected = "positive x")]
    fn non_positive_x_rejected() {
        let _ = scatter_svg(
            "t",
            "x",
            "y",
            &[ScatterPoint {
                label: "bad".into(),
                x: 0.0,
                y: 1.0,
            }],
        );
    }
}
