//! Offline stand-in for the `criterion` crate.
//!
//! Supports the API surface this workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `Bencher::iter` — with a straightforward
//! median-of-samples timing loop instead of criterion's statistics
//! engine. Results print as `group/name  median  (min … max)` lines.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value barrier.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// New id from a function name and a displayable parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the measured closure.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, once per sample after warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50 ms or 3 iterations, whichever first.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3 && warm_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
        }
        self.durations.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.durations.push(t.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Reduce measurement time — accepted for compatibility, unused.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut b);
        let mut ds = b.durations;
        if ds.is_empty() {
            println!("{}/{label}: no samples recorded", self.name);
            return;
        }
        ds.sort_unstable();
        let median = ds[ds.len() / 2];
        println!(
            "{}/{label}  time: {}  (min {} … max {}; {} samples)",
            self.name,
            fmt_duration(median),
            fmt_duration(ds[0]),
            fmt_duration(ds[ds.len() - 1]),
            ds.len(),
        );
    }

    /// Benchmark a closure under a string label.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        label: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run_one(&label.to_string(), f);
        self
    }

    /// Benchmark a closure receiving a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Benchmark a closure directly on the driver.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        label: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(label, f);
        self
    }
}

/// Collect bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = <$crate::Criterion as ::core::default::Default>::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
