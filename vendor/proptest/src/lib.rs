//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate
//! provides the subset of proptest this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_filter`,
//! numeric-range / tuple / `Just` strategies, `prop::collection::vec`,
//! `prop::option::of`, `any::<T>()`, the `proptest!`, `prop_oneof!`,
//! `prop_assert*!` and `prop_assume!` macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Semantics differ from real proptest in two deliberate ways: inputs
//! are sampled from a per-test deterministic PRNG rather than an
//! entropy-seeded one (every CI run exercises the identical corpus),
//! and there is **no shrinking** — a failing case panics with the
//! sampled inputs left to the assertion message.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic test PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Deterministic seed derived from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Run-count configuration (the only knob this stand-in honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// Config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test inputs.
///
/// Combinator methods require `Self: Sized` so the trait stays object
/// safe (`prop_oneof!` boxes its arms).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard samples failing `pred` (resampling, up to a bounded
    /// number of attempts).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }

    /// Box the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive samples",
            self.reason
        );
    }
}

/// Constant strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                if s == <$t>::MIN && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = e.wrapping_sub(s) as u64 + 1;
                s.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                s + (rng.unit_f64() as $t) * (e - s)
            }
        }
    )*};
}

float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind `any::<bool>()`.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform choice among boxed alternatives — backing for
/// `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

/// Build a [`OneOf`] from boxed arms.
pub fn one_of<T>(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { arms }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Sub-strategies namespaced like the real crate's `prop::` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Inclusive length bounds for collection strategies, like the
        /// real crate's `SizeRange`. Taking a concrete conversion (not
        /// a generic `Strategy<Value = usize>` bound) pins untyped
        /// integer literals such as `0..400` to `usize`.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy for `Vec<T>` with sampled length.
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        /// `Vec` strategy: `len` is a `usize`, `Range<usize>`, or
        /// `RangeInclusive<usize>`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.hi - self.len.lo) as u64 + 1;
                let n = self.len.lo + rng.below(span) as usize;
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option<T>`.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Some` with probability ¾, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 3 == 0 {
                    None
                } else {
                    Some(self.inner.sample(rng))
                }
            }
        }
    }
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategy expressions producing a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert within a property (panics; no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when an assumption does not hold.
///
/// The property body runs inside a `Result`-returning closure (as in
/// the real crate), so this expands to an early `return Ok(())` —
/// the case is counted but trivially passes.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Define property tests. Syntax-compatible with the real crate for
/// bodies of the form
/// `fn name(binding in strategy, ...) { ... }` with an optional
/// leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($binding:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut proptest_rng = $crate::TestRng::from_name(stringify!($name));
            for _proptest_case in 0..config.cases {
                let ($($binding,)+) =
                    ($($crate::Strategy::sample(&($strategy), &mut proptest_rng),)+);
                // The body runs in a `Result`-returning closure so
                // `return Ok(())` and `prop_assume!` can end a case
                // early, as in the real crate.
                #[allow(unreachable_code)]
                let mut case = move || -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    ::core::result::Result::Ok(())
                };
                if let ::core::result::Result::Err(e) = case() {
                    panic!("property {} failed: {}", stringify!($name), e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        let s = (1.0f64..1000.0, prop::option::of(0u32..3));
        for _ in 0..1000 {
            let (f, o) = s.sample(&mut rng);
            assert!((1.0..1000.0).contains(&f));
            if let Some(v) = o {
                assert!(v < 3);
            }
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::TestRng::new(2);
        let s = prop_oneof![Just(0u32), Just(1u32), Just(2u32)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::TestRng::new(3);
        let s = prop::collection::vec(0i64..10, 2..=4);
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_runnable_tests(
            x in 0u64..100,
            mut v in prop::collection::vec(0i64..50, 0..10),
            flag in any::<bool>(),
        ) {
            prop_assume!(x != 99);
            v.sort_unstable();
            prop_assert!(x < 99);
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
            let _ = flag;
        }
    }
}
