//! Offline stand-in for the `rand` crate, covering the API subset this
//! workspace uses (`Rng::gen`, `Rng::gen_range`, `SeedableRng::
//! seed_from_u64`, `StdRng`, `SmallRng`, `seq::SliceRandom`).
//!
//! The build environment has no network access to crates.io, so the
//! real `rand` cannot be fetched; this crate keeps the workspace
//! self-contained. The generator is xoshiro256++ seeded through
//! SplitMix64 — not the real crate's ChaCha12 `StdRng`, so the value
//! streams differ from upstream `rand`, but every consumer in this
//! repository only requires a deterministic, well-mixed stream.

#![warn(missing_docs)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is
/// provided).
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used for seed expansion.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ — the default generator behind [`rngs::StdRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256PlusPlus { s }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::Xoshiro256PlusPlus as StdRng;

    /// Small fast generator — same engine as [`StdRng`] here.
    pub type SmallRng = super::Xoshiro256PlusPlus;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Sample a value from the "standard" distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the plain variant is irrelevant for
                // the synthetic workloads this repo generates.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty gen_range");
                if s == <$t>::MIN && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = e.wrapping_sub(s) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                s.wrapping_add(hi as $t)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = f64::sample_standard(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty gen_range");
                let unit = f64::sample_standard(rng) as $t;
                s + unit * (e - s)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude` equivalent.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "degenerate unit distribution");
    }

    #[test]
    fn shuffle_permutes() {
        use seq::SliceRandom;
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "identity shuffle is astronomically unlikely");
    }
}
