//! # sdp — Skyline Dynamic Programming query optimization
//!
//! A from-scratch Rust reproduction of *"Robust Heuristics for
//! Scalable Optimization of Complex SQL Queries"* (ICDE 2007): the
//! **SDP** join-order enumerator — classical bottom-up dynamic
//! programming augmented with localized, hub-partitioned skyline
//! pruning over `[Rows, Cost, Selectivity]` feature vectors — together
//! with everything needed to evaluate it: a synthetic benchmark
//! catalog, a PostgreSQL-shaped cost model, the IDP and GOO competitor
//! enumerators, a validation executor, and an experiment harness that
//! regenerates every table and figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use sdp::prelude::*;
//!
//! // The paper's 25-relation benchmark schema.
//! let catalog = Catalog::paper();
//!
//! // A 15-relation star-chain query (the paper's Figure 1.1 shape).
//! let query = QueryGenerator::new(&catalog, Topology::star_chain(15), 42).instance(0);
//!
//! // Optimize with SDP and with exhaustive DP, compare.
//! let optimizer = Optimizer::new(&catalog);
//! let sdp = optimizer.optimize(&query, Algorithm::Sdp(SdpConfig::paper())).unwrap();
//! let dp = optimizer.optimize(&query, Algorithm::Dp).unwrap();
//! assert!(sdp.cost / dp.cost < 2.0); // SDP is at least "good", usually ideal
//! assert!(sdp.stats.plans_costed < dp.stats.plans_costed / 2);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`catalog`] | schema, statistics, the paper's 25-relation benchmark database |
//! | [`query`] | join graphs, topologies, hub detection, workload generation |
//! | [`skyline`] | skyline algorithms (BNL, SFS, pairwise-union, k-dominant) |
//! | [`cost`] | PostgreSQL-shaped cost model and cardinality estimation |
//! | [`core`] | the enumerators: DP, IDP(k), **SDP**, GOO; memo, plans, budgets |
//! | [`sql`] | SQL front-end: lexer, parser, binder, renderer |
//! | [`engine`] | synthetic tuples + Volcano executor for validation |
//! | [`metrics`] | plan-quality classes, ρ, overhead aggregation, service counters, metrics exposition |
//! | [`service`] | resident optimizer daemon: query fingerprints, sharded plan cache, single-flight coalescing |
//! | [`trace`] | zero-dependency structured tracing: spans, sinks, chrome://tracing dumps |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use sdp_catalog as catalog;
pub use sdp_core as core;
pub use sdp_cost as cost;
pub use sdp_engine as engine;
pub use sdp_metrics as metrics;
pub use sdp_query as query;
pub use sdp_service as service;
pub use sdp_skyline as skyline;
pub use sdp_sql as sql;
pub use sdp_trace as trace;

/// The common imports for working with the library.
pub mod prelude {
    pub use sdp_catalog::{Catalog, ColId, RelId, SchemaSpec};
    pub use sdp_core::{
        explain::explain, explain::explain_analyze, Algorithm, Budget, CancelHandle, DegradeReason,
        EnumeratorKind, GovernedPlan, Governor, LevelStats, OptError, OptimizedPlan, Optimizer,
        Partitioning, Rung, SdpConfig, SkylineOption,
    };
    pub use sdp_cost::{CostModel, CostParams};
    pub use sdp_engine::{execute, scaled_catalog, Database};
    pub use sdp_metrics::{QualityClass, QualitySummary};
    pub use sdp_query::{
        ColRef, JoinEdge, JoinGraph, PredOp, Predicate, Query, QueryGenerator, RelSet, Topology,
    };
    pub use sdp_service::{
        Daemon, DaemonConfig, Fingerprint, OptimizerService, PlanSource, ServiceConfig,
        ServiceError, ServiceRequest, ShedReason,
    };
    pub use sdp_sql::{parse_query, render_sql};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_full_pipeline() {
        let catalog = Catalog::paper();
        let query = QueryGenerator::new(&catalog, Topology::Star(5), 1).instance(0);
        let plan = Optimizer::new(&catalog)
            .optimize(&query, Algorithm::Sdp(SdpConfig::paper()))
            .unwrap();
        assert!(plan.cost > 0.0);
        assert!(!explain(&plan.root).is_empty());
    }

    #[test]
    fn facade_exposes_the_service_layer() {
        let service = OptimizerService::with_defaults(Catalog::paper());
        let req = ServiceRequest::sql("SELECT * FROM R1 a, R2 b WHERE a.c0 = b.c1");
        assert_eq!(service.get_plan(&req).unwrap().source, PlanSource::Fresh);
        assert_eq!(service.get_plan(&req).unwrap().source, PlanSource::Cache);
    }
}
