//! `sdp-cli` — an interactive optimizer shell.
//!
//! ```text
//! $ cargo run --release --bin sdp-cli
//! sdp> SELECT * FROM R24 f, R3 a WHERE f.c0 = a.c2
//! ... EXPLAIN output ...
//! sdp> \algorithm idp7
//! sdp> \execute SELECT * FROM R1 a, R2 b WHERE a.c0 = b.c1
//! ```
//!
//! Commands: `\help`, `\tables`, `\algorithm <name>`, `\catalog
//! <paper|skewed|scaled>`, `\execute <sql>`, `\quit`. Anything else is
//! parsed as SQL, optimized with the current algorithm, and explained.

use std::io::{BufRead, Write};

use sdp::prelude::*;

struct Shell {
    catalog: Catalog,
    catalog_name: String,
    database: Option<Database>,
    algorithm: Algorithm,
}

impl Shell {
    fn new() -> Self {
        Shell {
            catalog: Catalog::paper(),
            catalog_name: "paper".into(),
            database: None,
            algorithm: Algorithm::Sdp(SdpConfig::paper()),
        }
    }

    fn set_catalog(&mut self, name: &str) -> Result<(), String> {
        let (catalog, database) = match name {
            "paper" => (Catalog::paper(), None),
            "skewed" => (Catalog::paper_skewed(), None),
            "scaled" => {
                let c = scaled_catalog(12, 2000, 7);
                let db = Database::generate(&c, 42);
                (c, Some(db))
            }
            other => return Err(format!("unknown catalog `{other}` (paper|skewed|scaled)")),
        };
        self.catalog = catalog;
        self.database = database;
        self.catalog_name = name.to_string();
        Ok(())
    }

    fn set_algorithm(&mut self, name: &str) -> Result<(), String> {
        self.algorithm = match name {
            "dp" => Algorithm::Dp,
            "idp4" => Algorithm::Idp { k: 4 },
            "idp7" => Algorithm::Idp { k: 7 },
            "sdp" => Algorithm::Sdp(SdpConfig::paper()),
            "sdp-global" => Algorithm::Sdp(SdpConfig {
                partitioning: Partitioning::Global,
                skyline: SkylineOption::PairwiseUnion,
            }),
            "goo" => Algorithm::Goo,
            "ii" => Algorithm::ii(),
            "sa" => Algorithm::sa(),
            other => {
                return Err(format!(
                    "unknown algorithm `{other}` (dp|idp4|idp7|sdp|sdp-global|goo|ii|sa)"
                ))
            }
        };
        Ok(())
    }

    fn explain_sql(&self, sql: &str) {
        let query = match parse_query(&self.catalog, sql) {
            Ok(q) => q,
            Err(e) => {
                println!("error: {e}");
                return;
            }
        };
        let optimizer = Optimizer::new(&self.catalog);
        match optimizer.optimize(&query, self.algorithm) {
            Ok(plan) => {
                println!(
                    "{} plan (cost {:.0}, est. {:.0} rows, {} plans costed, {:?}):",
                    self.algorithm.label(),
                    plan.cost,
                    plan.rows,
                    plan.stats.plans_costed,
                    plan.stats.elapsed
                );
                print!("{}", explain(&plan.root));
            }
            Err(e) => println!("optimization failed: {e}"),
        }
    }

    fn execute_sql(&self, sql: &str) {
        let Some(db) = &self.database else {
            println!("no data loaded — switch to the scaled catalog first: \\catalog scaled");
            return;
        };
        let query = match parse_query(&self.catalog, sql) {
            Ok(q) => q,
            Err(e) => {
                println!("error: {e}");
                return;
            }
        };
        let optimizer = Optimizer::new(&self.catalog);
        match optimizer.optimize(&query, self.algorithm) {
            Ok(plan) => match execute(&plan.root, &query, &self.catalog, db) {
                Ok(rows) => {
                    println!(
                        "{} rows (estimated {:.0}); first rows:",
                        rows.len(),
                        plan.rows
                    );
                    for row in rows.iter().take(5) {
                        let cells: Vec<String> =
                            row.iter().take(8).map(|v| v.to_string()).collect();
                        println!(
                            "  ({}{})",
                            cells.join(", "),
                            if row.len() > 8 { ", …" } else { "" }
                        );
                    }
                }
                Err(e) => println!("execution failed: {e}"),
            },
            Err(e) => println!("optimization failed: {e}"),
        }
    }

    fn tables(&self) {
        println!(
            "catalog `{}`: {} relations",
            self.catalog_name,
            self.catalog.len()
        );
        for rel in self.catalog.relations() {
            println!(
                "  {:<6} {:>9} rows, {} columns, index on {}",
                rel.name,
                rel.cardinality,
                rel.columns.len(),
                rel.indexed_column
            );
        }
    }
}

const HELP: &str = "\
commands:
  \\help                 this text
  \\tables               list relations of the current catalog
  \\algorithm <name>     dp | idp4 | idp7 | sdp | sdp-global | goo | ii | sa
  \\catalog <name>       paper | skewed | scaled (scaled loads executable data)
  \\execute <sql>        optimize AND run (scaled catalog only)
  \\quit                 exit
anything else is SQL: SELECT * FROM <t> [<alias>], ... [WHERE ...] [ORDER BY a.c]";

fn main() {
    let mut shell = Shell::new();
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    if interactive {
        println!(
            "sdp-cli — Skyline Dynamic Programming shell ({} relations loaded). \\help for help.",
            shell.catalog.len()
        );
    }
    loop {
        if interactive {
            print!("sdp> ");
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cmd) = line.strip_prefix('\\') {
            let (head, rest) = cmd.split_once(' ').unwrap_or((cmd, ""));
            let rest = rest.trim();
            match head {
                "help" => println!("{HELP}"),
                "quit" | "q" | "exit" => break,
                "tables" => shell.tables(),
                "algorithm" => match shell.set_algorithm(rest) {
                    Ok(()) => println!("algorithm = {}", shell.algorithm.label()),
                    Err(e) => println!("{e}"),
                },
                "catalog" => match shell.set_catalog(rest) {
                    Ok(()) => println!(
                        "catalog = {} ({} relations{})",
                        shell.catalog_name,
                        shell.catalog.len(),
                        if shell.database.is_some() {
                            ", data loaded"
                        } else {
                            ""
                        }
                    ),
                    Err(e) => println!("{e}"),
                },
                "execute" => shell.execute_sql(rest),
                other => println!("unknown command \\{other} — \\help for help"),
            }
        } else {
            shell.explain_sql(line);
        }
    }
}

/// Minimal TTY detection without a dependency: honour `SDP_CLI_BATCH`
/// and fall back to assuming interactive.
fn atty_stdin() -> bool {
    std::env::var_os("SDP_CLI_BATCH").is_none()
}
