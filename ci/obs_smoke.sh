#!/usr/bin/env bash
# Observability smoke for the flight recorder and Q-error observatory.
#
# For each enumerator (levelscan, dpccp) and each SDP_THREADS in
# {1, 4}: run a single-client replay with `--flight-dir` and
# `--qerror`, let the process exit (crash-equivalent for the
# write-through log), then reconstruct the decisions with a separate
# `sdp-service inspect --flight` process and assert:
#
# 1. The canonical record listing — kinds, decision tags, plan
#    digests, and the multiset digest line — is byte-identical across
#    thread counts (flight records carry no wall clock in canonical
#    form; arrival seq is deterministic under one client).
# 2. The Q-error aggregates (`qerror` family in the metrics JSON) are
#    bit-identical across thread counts, non-empty, and the report
#    carries schema version 2.
# 3. A torn tail (garbage appended to flight.log) is truncated on
#    recovery without losing any intact record, and the calibration
#    log round-trips the expected record count.

set -euo pipefail

BIN=target/release/sdp-service
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== build =="
cargo build --release -p sdp-service

REPLAY="$BIN replay --clients 1 --requests 12 --distinct 4 --relations 6 --seed 42"

for enumerator in levelscan dpccp; do
  for threads in 1 4; do
    tag="$enumerator-$threads"
    echo "== replay with flight recorder ($enumerator, SDP_THREADS=$threads) =="
    SDP_THREADS=$threads $REPLAY --enumerator "$enumerator" \
      --flight-dir "$WORK/flight-$tag" \
      --qerror --metrics-json "$WORK/metrics-$tag.json" \
      | tee "$WORK/run-$tag.out"
    grep -q '^flight: 0 prior records recovered' "$WORK/run-$tag.out" || {
      echo "error: fresh flight dir reported prior records" >&2
      exit 1
    }
    echo "== post-exit reconstruction ($tag) =="
    $BIN inspect --flight "$WORK/flight-$tag" > "$WORK/inspect-$tag.txt"
    # Drop the recovery banner (it names the per-run directory); keep
    # the canonical records and the digest line.
    tail -n +2 "$WORK/inspect-$tag.txt" > "$WORK/records-$tag.txt"
    grep -q '^request .*outcome=fresh' "$WORK/records-$tag.txt" || {
      echo "error: no fresh-optimization decision in the flight log" >&2
      exit 1
    }
    grep -q '^request .*outcome=hit' "$WORK/records-$tag.txt" || {
      echo "error: no cache-hit decision in the flight log" >&2
      exit 1
    }
    grep -q "enumerator=$enumerator" "$WORK/records-$tag.txt" || {
      echo "error: records do not carry the enumerator tag" >&2
      exit 1
    }
    grep -q 'digest=[0-9a-f]\{16\}' "$WORK/records-$tag.txt" || {
      echo "error: records do not carry plan structural digests" >&2
      exit 1
    }
  done

  echo "== flight records identical across SDP_THREADS ($enumerator) =="
  diff -u "$WORK/records-$enumerator-1.txt" "$WORK/records-$enumerator-4.txt" || {
    echo "error: flight records diverged across SDP_THREADS" >&2
    exit 1
  }
  python3 - "$WORK/metrics-$enumerator-1.json" "$WORK/metrics-$enumerator-4.json" <<'EOF'
import json, sys
a, b = (json.load(open(p)) for p in sys.argv[1:3])
assert a["schema"] == 2, f"expected schema 2, got {a['schema']}"
assert a["qerror"], "qerror family empty after --qerror replay"
assert any(k.startswith("node:") for k in a["qerror"]), "no per-kind series"
assert any(k.startswith("pred:") for k in a["qerror"]), "no per-predicate series"
assert a["qerror"] == b["qerror"], "qerror aggregates diverged across SDP_THREADS"
print(f"qerror ok: {len(a['qerror'])} series identical across SDP_THREADS=1 and 4")
EOF
done

echo "== torn-tail recovery =="
FLIGHT_DIR="$WORK/flight-levelscan-1"
records=$(grep -c '^flight digest' "$WORK/inspect-levelscan-1.txt" >/dev/null; \
          sed -n 's/^flight digest: [0-9a-f]* over \([0-9]*\) records$/\1/p' \
          "$WORK/inspect-levelscan-1.txt")
printf 'torn-frame-garbage-bytes' >> "$FLIGHT_DIR/flight.log"
$BIN inspect --flight "$FLIGHT_DIR" > "$WORK/inspect-torn.txt"
grep -q "^flight: $records records recovered from .*(torn tail truncated)$" \
  "$WORK/inspect-torn.txt" || {
  echo "error: torn tail not truncated or intact records lost" >&2
  head -1 "$WORK/inspect-torn.txt" >&2
  exit 1
}
tail -n +2 "$WORK/inspect-torn.txt" > "$WORK/records-torn.txt"
diff -u "$WORK/records-levelscan-1.txt" "$WORK/records-torn.txt" || {
  echo "error: recovered records changed after torn-tail truncation" >&2
  exit 1
}
echo "torn tail ok: $records records survive, garbage frame dropped"

echo "== calibration log round-trips =="
appended=$(sed -n 's/^qerror: \([0-9]*\) calibration records appended$/\1/p' \
  "$WORK/run-levelscan-1.out")
[ -n "$appended" ] && [ "$appended" -gt 0 ] || {
  echo "error: no calibration records appended during --qerror replay" >&2
  exit 1
}
SDP_THREADS=1 $REPLAY --enumerator levelscan --flight-dir "$FLIGHT_DIR" \
  --qerror >/dev/null 2>&1 || true
# Re-opening the directory reports the prior records before appending.
SDP_THREADS=1 $REPLAY --enumerator levelscan --flight-dir "$WORK/flight-reopen" \
  --qerror | tee "$WORK/reopen-1.out" >/dev/null
SDP_THREADS=1 $REPLAY --enumerator levelscan --flight-dir "$WORK/flight-reopen" \
  --qerror | tee "$WORK/reopen-2.out" >/dev/null
grep -q '^flight: 0 prior records recovered' "$WORK/reopen-1.out"
reopened=$(sed -n 's/^flight: \([0-9]*\) prior records recovered.*/\1/p' "$WORK/reopen-2.out")
[ "$reopened" -gt 0 ] || {
  echo "error: second run over the same flight dir recovered nothing" >&2
  exit 1
}
echo "calibration ok: $appended records per run, $reopened flight records re-recovered"

echo "obs smoke ok"
