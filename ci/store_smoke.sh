#!/usr/bin/env bash
# Crash-restart smoke for the durable plan store and dead-letter queue.
#
# 1. Start a replay against a fresh --store-dir and kill the process
#    mid-workload via the testkit crash point (abort at the Nth store
#    write) — the segment log is left exactly as a crash would leave
#    it, possibly with a torn tail.
# 2. Restart on the same directory: recovery must truncate any torn
#    tail, warm-fill the cache (store.warm_fills > 0), serve warm hits
#    (store.warm_hits > 0), and finish the workload.
# 3. Restart once more: the plan digest — a fold over every served
#    plan's structural digest — must be bit-identical to step 2's.
# 4. Induce ladder exhaustion with a zero memory budget (expected
#    non-zero exit), then `replay --dlq` must re-optimize every dead
#    letter and drain the queue to zero (second drain sees 0 records).
#
# Run under both SDP_THREADS=1 and SDP_THREADS=4 in CI.

set -euo pipefail

BIN=target/release/sdp-service
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
STORE="$WORK/store"
DLQ="$WORK/dlq-store"

echo "== build (testkit) =="
cargo build --release -p sdp-service --features testkit

REPLAY="$BIN replay --requests 64 --distinct 6 --relations 7"

echo "== 1. crash mid-workload (abort at 3rd store write) =="
if $REPLAY --store-dir "$STORE" --crash-after-store-writes 3 \
    >"$WORK/crash.out" 2>&1; then
  echo "error: replay survived its crash point" >&2
  exit 1
fi
echo "crashed as planned; store dir holds $(ls "$STORE" | tr '\n' ' ')"

echo "== 2. restart: recover, warm-fill, finish the workload =="
$REPLAY --store-dir "$STORE" --metrics-json "$WORK/warm1.json" \
  | tee "$WORK/warm1.out"
python3 - "$WORK/warm1.json" <<'EOF'
import json, sys
store = json.load(open(sys.argv[1]))["store"]
assert store["warm_fills"] > 0, f"no warm fills after restart: {store}"
assert store["warm_hits"] > 0, f"no warm hits after restart: {store}"
assert store["write_errors"] == 0, store
print(f"restart ok: {store['warm_fills']} warm fills, "
      f"{store['warm_hits']} warm hits, "
      f"{store['torn_truncations']} torn tails truncated")
EOF

echo "== 3. second restart: plans must be bit-identical =="
$REPLAY --store-dir "$STORE" --metrics-json "$WORK/warm2.json" \
  | tee "$WORK/warm2.out"
d1=$(grep -o 'plan digest: [0-9a-f]*' "$WORK/warm1.out")
d2=$(grep -o 'plan digest: [0-9a-f]*' "$WORK/warm2.out")
[ -n "$d1" ] && [ "$d1" = "$d2" ] || {
  echo "error: plan digests diverged across restart: '$d1' vs '$d2'" >&2
  exit 1
}
echo "digests match across restart: $d1"

echo "== 4. dead-letter queue: exhaust the ladder, then drain =="
if $BIN replay --requests 8 --distinct 2 --relations 7 --clients 1 \
    --store-dir "$DLQ" --memory-mb 0 >"$WORK/dlq.out" 2>&1; then
  echo "error: zero memory budget should fail the workload" >&2
  exit 1
fi
grep -q 'dlq: 8 enqueued' "$WORK/dlq.out" || {
  cat "$WORK/dlq.out" >&2
  echo "error: expected 8 dead letters" >&2
  exit 1
}
$BIN replay --relations 7 --dlq "$DLQ" | tee "$WORK/drain.out"
grep -q 'drained 8, 0 remain' "$WORK/drain.out" || {
  echo "error: DLQ did not drain to zero" >&2
  exit 1
}
$BIN replay --relations 7 --dlq "$DLQ" | grep -q '0 records recovered' || {
  echo "error: drained DLQ should be empty on reopen" >&2
  exit 1
}
echo "== 5. ordered workload: warm restart must reproduce ordered plans =="
OSTORE="$WORK/ordered-store"
ORDERED="$BIN replay --requests 32 --distinct 4 --relations 7 --ordered"
$ORDERED --store-dir "$OSTORE" | tee "$WORK/ord1.out"
$ORDERED --store-dir "$OSTORE" --metrics-json "$WORK/ord2.json" \
  | tee "$WORK/ord2.out"
python3 - "$WORK/ord2.json" <<'EOF'
import json, sys
store = json.load(open(sys.argv[1]))["store"]
assert store["warm_fills"] > 0, f"no warm fills after ordered restart: {store}"
assert store["warm_hits"] > 0, f"no warm hits after ordered restart: {store}"
assert store["write_errors"] == 0, store
print(f"ordered restart ok: {store['warm_fills']} warm fills, "
      f"{store['warm_hits']} warm hits")
EOF
o1=$(grep -o 'plan digest: [0-9a-f]*' "$WORK/ord1.out")
o2=$(grep -o 'plan digest: [0-9a-f]*' "$WORK/ord2.out")
[ -n "$o1" ] && [ "$o1" = "$o2" ] || {
  echo "error: ordered plan digests diverged across restart: '$o1' vs '$o2'" >&2
  exit 1
}
echo "ordered digests match across restart: $o1"

echo "store smoke ok (SDP_THREADS=${SDP_THREADS:-default})"
