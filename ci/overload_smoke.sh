#!/usr/bin/env bash
# Overload-control smoke for the bounded-admission daemon.
#
# Runs the `replay --overload` battery — a poison ladder that trips
# one fingerprint's circuit breaker and recovers it through the
# counted half-open probe, then paused 4x-capacity bursts against a
# bounded queue with statistics-epoch bumps pushing plans onto the
# stale shelf — at SDP_THREADS=1 and SDP_THREADS=4, and asserts:
#
# 1. Nonzero sheds and stale serves, exactly one breaker trip and one
#    recovery, exactly probe_every-1 fail-fast rejections, and fully
#    released queue/in-flight gauges (metrics JSON).
# 2. The DLQ captured every poison failure AND every breaker-open
#    rejection; `replay --dlq` re-optimizes all of them to zero.
# 3. Every overload decision — the per-round admit/stale/shed split,
#    the shed/breaker counters, and the plan-digest fold — is
#    identical across enumeration thread counts: overload policy is
#    counted, never wall-clock.

set -euo pipefail

BIN=target/release/sdp-service
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== build =="
cargo build --release -p sdp-service

REPLAY="$BIN replay --overload 3 --queue-cap 4 --distinct 4 --relations 7 --workers 2 --seed 42"

for threads in 1 4; do
  echo "== overload battery (SDP_THREADS=$threads) =="
  SDP_THREADS=$threads $REPLAY --store-dir "$WORK/store-$threads" \
    --metrics-json "$WORK/metrics-$threads.json" | tee "$WORK/run-$threads.out"
  python3 - "$WORK/metrics-$threads.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
o = m["overload"]
assert o["shed_queue_full"] > 0, f"no queue-full sheds: {o}"
assert o["served_stale"] > 0, f"stale-serve never engaged: {o}"
assert o["breaker_trips"] == 1, f"expected exactly one breaker trip: {o}"
assert o["breaker_recoveries"] == 1, f"the half-open probe must recover: {o}"
assert o["breaker_rejections"] == 3, f"expected probe_every-1 fail-fasts: {o}"
assert o["queue_depth"] == 0 and o["inflight"] == 0, f"gauges not released: {o}"
assert o["queue_depth_hwm"] == 4, f"high-water must equal the queue cap: {o}"
s = m["store"]
assert s["dlq_enqueued"] == 6, f"expected 3 poison + 3 breaker-open dead letters: {s}"
print(f"overload ok: {o['shed_queue_full']} shed, {o['served_stale']} stale, "
      f"breaker {o['breaker_trips']} trip / {o['breaker_rejections']} rejected / "
      f"{o['breaker_recoveries']} recovered")
EOF
done

echo "== decisions identical across thread counts =="
for threads in 1 4; do
  { grep '^overload: round' "$WORK/run-$threads.out"
    grep '^breaker:' "$WORK/run-$threads.out"
    grep -o 'plan digest: [0-9a-f]*' "$WORK/run-$threads.out"
  } > "$WORK/decisions-$threads.txt"
done
diff -u "$WORK/decisions-1.txt" "$WORK/decisions-4.txt" || {
  echo "error: overload decisions diverged across SDP_THREADS" >&2
  exit 1
}
python3 - "$WORK/metrics-1.json" "$WORK/metrics-4.json" <<'EOF'
import json, sys
a, b = (json.load(open(p))["overload"] for p in sys.argv[1:3])
# The in-flight high-water depends on worker scheduling, not on any
# admission decision; everything else must match bit-for-bit.
a.pop("inflight_hwm"), b.pop("inflight_hwm")
assert a == b, f"overload counters diverged across SDP_THREADS:\n  {a}\n  {b}"
print("decision counters identical across SDP_THREADS=1 and 4")
EOF
cat "$WORK/decisions-1.txt"

echo "== dlq drain re-optimizes poison and breaker-open records =="
$BIN replay --relations 7 --dlq "$WORK/store-1" | tee "$WORK/drain.out"
rejected=$(grep -c 'was: circuit breaker open' "$WORK/drain.out" || true)
[ "$rejected" -eq 3 ] || {
  echo "error: expected 3 breaker-open dead letters in the drain, saw $rejected" >&2
  exit 1
}
grep -q 'drained 6, 0 remain' "$WORK/drain.out" || {
  echo "error: DLQ did not drain all 6 records to zero" >&2
  exit 1
}

echo "overload smoke ok"
