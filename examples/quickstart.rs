//! Quickstart: optimize one complex query with SDP and inspect the
//! plan.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sdp::prelude::*;

fn main() {
    // The paper's benchmark schema: 25 relations, geometric
    // cardinalities from 100 to 2.5M rows, 24 columns each, one
    // random index per relation.
    let catalog = Catalog::paper();
    println!(
        "catalog: {} relations, ~{:.1} GB of (virtual) data",
        catalog.len(),
        catalog.database_bytes() as f64 / (1 << 30) as f64
    );

    // A Star-Chain-15 query: the hub star-joins ten relations and a
    // four-relation chain hangs off the last spoke (Figure 1.1; the
    // shape of TPC-H Q8/Q9).
    let query = QueryGenerator::new(&catalog, Topology::star_chain(15), 42).instance(0);
    println!(
        "query: {} relations, {} join predicates\n",
        query.num_relations(),
        query.graph.edges().len()
    );

    // Optimize with Skyline Dynamic Programming.
    let optimizer = Optimizer::new(&catalog);
    let plan = optimizer
        .optimize(&query, Algorithm::Sdp(SdpConfig::paper()))
        .expect("SDP always completes within the default budget");

    println!("SDP plan (cost {:.0}, {:.0} rows):", plan.cost, plan.rows);
    println!("{}", explain(&plan.root));
    println!(
        "overheads: {} plans costed, {} JCRs processed ({} pruned), {:.1} MB peak, {:?}",
        plan.stats.plans_costed,
        plan.stats.jcrs_processed,
        plan.stats.jcrs_pruned,
        plan.stats.peak_model_bytes as f64 / (1 << 20) as f64,
        plan.stats.elapsed
    );

    // How good is it? Exhaustive DP is still feasible at 15 relations.
    let dp = optimizer.optimize(&query, Algorithm::Dp).unwrap();
    let ratio = plan.cost / dp.cost;
    println!(
        "\nDP optimum costs {:.0} → SDP ratio {:.4} ({})",
        dp.cost,
        ratio,
        QualityClass::classify(ratio.max(1.0))
    );
    println!(
        "DP needed {} plans costed — SDP explored {:.1}% of that",
        dp.stats.plans_costed,
        100.0 * plan.stats.plans_costed as f64 / dp.stats.plans_costed as f64
    );
}
