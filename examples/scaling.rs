//! Scaling behaviour: how far can each enumerator push a pure star
//! join before the 1 GB memory model gives out? (The paper's
//! Tables 2.1 and 3.3.)
//!
//! ```text
//! cargo run --release --example scaling
//! ```

use sdp::prelude::*;

fn main() {
    // The extended scale-up schema: enough relations (and enough
    // columns per relation) for very large pure stars.
    let catalog = Catalog::extended(64);
    let optimizer = Optimizer::new(&catalog); // default 1 GB budget

    println!(
        "{:<10} {:>4} {:>12} {:>12} {:>14}   outcome",
        "Technique", "N", "time (ms)", "peak MB", "plans costed"
    );
    for alg in [
        Algorithm::Dp,
        Algorithm::Idp { k: 7 },
        Algorithm::Idp { k: 4 },
        Algorithm::Sdp(SdpConfig::paper()),
    ] {
        for n in [12usize, 16, 20, 24, 32, 40, 48] {
            let query = QueryGenerator::new(&catalog, Topology::Star(n), 7).instance(0);
            match optimizer.optimize(&query, alg) {
                Ok(plan) => println!(
                    "{:<10} {:>4} {:>12.1} {:>12.1} {:>14}   ok",
                    alg.label(),
                    n,
                    plan.stats.elapsed.as_secs_f64() * 1000.0,
                    plan.stats.peak_model_bytes as f64 / (1 << 20) as f64,
                    plan.stats.plans_costed
                ),
                Err(e) => {
                    println!(
                        "{:<10} {:>4} {:>12} {:>12} {:>14}   {e}",
                        alg.label(),
                        n,
                        "-",
                        "-",
                        "-"
                    );
                    break; // larger stars will not get easier
                }
            }
        }
        println!();
    }
    println!(
        "Expected shape (paper Table 3.3): DP dies first, then IDP(7); SDP handles\n\
         roughly double IDP's limit, in under a second."
    );
}
