//! Close the loop: materialize synthetic tuples, execute the chosen
//! plans with the Volcano engine, and check that (a) every enumerator
//! returns the same result multiset and (b) the cost model's row
//! estimates track reality.
//!
//! ```text
//! cargo run --release --example execute_and_validate
//! ```

use sdp::engine::{actual_vs_estimated, q_error};
use sdp::prelude::*;

fn main() {
    // A scaled-down world (10 … 2000 rows) so actual execution is
    // instant; the statistical shapes match the full benchmark.
    let catalog = scaled_catalog(12, 2000, 7);
    let db = Database::generate(&catalog, 99);
    let optimizer = Optimizer::new(&catalog);

    let query = QueryGenerator::new(&catalog, Topology::star_chain(7), 5).instance(0);
    println!(
        "query: {} relations over a {}-relation scaled catalog\n",
        query.num_relations(),
        catalog.len()
    );

    // (a) Plan correctness: different enumerators, same answer.
    let mut reference: Option<usize> = None;
    for alg in [
        Algorithm::Dp,
        Algorithm::Sdp(SdpConfig::paper()),
        Algorithm::Idp { k: 4 },
        Algorithm::Goo,
    ] {
        let plan = optimizer.optimize(&query, alg).unwrap();
        let rows = execute(&plan.root, &query, &catalog, &db).unwrap();
        println!(
            "{:<8} cost {:>12.0} → {} result rows",
            alg.label(),
            plan.cost,
            rows.len()
        );
        match reference {
            None => reference = Some(rows.len()),
            Some(r) => assert_eq!(r, rows.len(), "plans disagree on the result!"),
        }
    }

    // (b) Estimate quality, operator by operator, for the DP plan.
    let plan = optimizer.optimize(&query, Algorithm::Dp).unwrap();
    println!("\nestimated vs actual rows per operator (DP plan):");
    let mut qerrors = Vec::new();
    for (set, est, act) in actual_vs_estimated(&plan.root, &query, &catalog, &db).unwrap() {
        let qe = q_error(est, act);
        qerrors.push(qe);
        println!("  {set:<22} est {est:>10.1}  actual {act:>8.0}  q-error {qe:>7.2}");
    }
    qerrors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "\nmedian q-error {:.2}, max {:.2} — the classical independence-assumption\n\
         estimator drifts with join depth, which is precisely why the optimizer\n\
         compares plans under one consistent model.",
        qerrors[qerrors.len() / 2],
        qerrors.last().unwrap()
    );
}
