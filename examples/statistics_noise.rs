//! How robust is each optimizer to imperfect statistics?
//!
//! Materialize data, re-derive statistics from a deliberately small
//! sample (a noisy `ANALYZE`), optimize under the noisy statistics,
//! then evaluate the chosen plans under the exact analytic model.
//!
//! ```text
//! cargo run --release --example statistics_noise [sample_rows]
//! ```

use sdp::core::recost;
use sdp::engine::analyze_database;
use sdp::metrics::geometric_mean_ratio;
use sdp::prelude::*;
use sdp::query::infer_transitive_edges;

fn main() {
    let sample_rows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);

    let analytic = scaled_catalog(12, 2000, 7);
    let db = Database::generate(&analytic, 42);
    let mut sampled = analytic.clone();
    sampled.replace_stats(analyze_database(&analytic, &db, sample_rows, 99));
    println!(
        "statistics source: {sample_rows}-row sample per relation (PostgreSQL-era ANALYZE \
         would use ~3000)\n"
    );

    let true_model = CostModel::with_defaults(&analytic);
    let algorithms = [
        Algorithm::Dp,
        Algorithm::Idp { k: 4 },
        Algorithm::Sdp(SdpConfig::paper()),
        Algorithm::Goo,
    ];
    let instances = 25u64;
    let generator = QueryGenerator::new(&analytic, Topology::star_chain(10), 0x5d9_2007)
        .with_filter_probability(0.8);

    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
    for k in 0..instances {
        let query = generator.instance(k);
        let mut rewritten = query.clone();
        infer_transitive_edges(&mut rewritten.graph);
        let classes = rewritten.equiv_classes();
        let truth = Optimizer::new(&analytic)
            .optimize(&query, Algorithm::Dp)
            .unwrap()
            .cost;
        for (i, &alg) in algorithms.iter().enumerate() {
            let plan = Optimizer::new(&sampled).optimize(&query, alg).unwrap();
            let true_cost = recost(&plan.root, &true_model, &rewritten.graph, &classes);
            ratios[i].push((true_cost / truth).max(1.0));
        }
    }

    println!(
        "{:<8} {:>12} {:>8}   (true cost of noisy-stats plan / true optimum)",
        "Tech", "rho(true)", "worst"
    );
    for (i, alg) in algorithms.iter().enumerate() {
        println!(
            "{:<8} {:>12.3} {:>8.2}",
            alg.label(),
            geometric_mean_ratio(&ratios[i]),
            ratios[i].iter().copied().fold(1.0f64, f64::max)
        );
    }
    println!(
        "\nReading: even exhaustive DP degrades when its statistics lie — the\n\
         interesting question is whether a pruning heuristic degrades *more*.\n\
         SDP should track DP closely (its skyline keeps the plans that remain\n\
         good under perturbation); cardinality-blind commitment (IDP) drifts\n\
         further. Rerun with a larger sample (e.g. 3000) to watch all rows\n\
         converge to 1.0."
    );
}
