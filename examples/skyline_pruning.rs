//! The multiway skyline pruning function, stand-alone: reproduces the
//! paper's Table 2.2 worked example and shows how the three pairwise
//! skylines interact.
//!
//! ```text
//! cargo run --release --example skyline_pruning
//! ```

use sdp::skyline::multiway::pairwise_skyline_membership;
use sdp::skyline::{k_dominant_skyline, pairwise_union_skyline, skyline_sfs};

fn main() {
    // The paper's Prune Group 1: five JCRs from the partition of root
    // hub 1, with feature vectors [Rows, Cost, Selectivity].
    let labels = ["123", "125", "135", "145", "156"];
    let vectors: Vec<Vec<f64>> = vec![
        vec![187_638.0, 49_386.0, 3.9e-5],
        vec![122_879.0, 52_132.0, 1.0e-5],
        vec![242_620.0, 56_021.0, 1.0e-5],
        vec![241_562.0, 55_388.0, 6.65e-6],
        vec![385_375.0, 52_632.0, 4.5e-6],
    ];

    println!("Paper Table 2.2 — multiway skyline pruning of Prune Group 1\n");
    let membership = pairwise_skyline_membership(&vectors);
    // Projection order: (R,C), (R,S), (C,S).
    let rc = &membership[0].1;
    let rs = &membership[1].1;
    let cs = &membership[2].1;

    println!(
        "{:<5} {:>10} {:>8} {:>9}   {:>2} {:>2} {:>2}   verdict",
        "JCR", "Rows", "Cost", "Sel", "RC", "CS", "RS"
    );
    for (i, label) in labels.iter().enumerate() {
        let m = |v: &Vec<usize>| if v.contains(&i) { "Y" } else { "-" };
        let survives = rc.contains(&i) || cs.contains(&i) || rs.contains(&i);
        println!(
            "{:<5} {:>10.0} {:>8.0} {:>9.2e}   {:>2} {:>2} {:>2}   {}",
            label,
            vectors[i][0],
            vectors[i][1],
            vectors[i][2],
            m(rc),
            m(cs),
            m(rs),
            if survives { "survives" } else { "PRUNED" }
        );
    }

    // Why "Option 2"? Compare against the full 3-D skyline (Option 1)
    // and the strong (k-dominant) skyline the paper flags as future
    // work.
    let option1 = skyline_sfs(&vectors);
    let option2 = pairwise_union_skyline(&vectors);
    let strong = k_dominant_skyline(&vectors, 2);
    let names = |idx: &[usize]| {
        idx.iter()
            .map(|&i| labels[i])
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!(
        "\nOption 1 (full-vector skyline) keeps : {}",
        names(&option1)
    );
    println!(
        "Option 2 (pairwise union)       keeps : {}",
        names(&option2)
    );
    println!("Strong (2-dominant) skyline     keeps : {}", names(&strong));
    println!(
        "\nThe paper picks Option 2: \"the best of both worlds\" — near-Option-1\n\
         plan quality at roughly half the JCRs processed (its Table 2.3)."
    );
}
