//! Drive the optimizer from SQL text: parse, bind, optimize with every
//! algorithm, and print the winning plans.
//!
//! ```text
//! cargo run --release --example sql_session ["SELECT ..."]
//! ```

use sdp::prelude::*;

fn main() {
    let catalog = Catalog::paper();
    let sql = std::env::args().nth(1).unwrap_or_else(|| {
        "SELECT * FROM R24 f, R3 a, R7 b, R12 c, R15 d \
         WHERE f.c0 = a.c2 AND f.c1 = b.c5 AND f.c3 = c.c1 AND c.c4 = d.c2 \
         AND a.c6 < 100 ORDER BY c.c1"
            .to_string()
    });
    println!("SQL> {sql}\n");

    let query = match parse_query(&catalog, &sql) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "bound: {} relations, {} joins, {} filters, order_by = {}\n",
        query.num_relations(),
        query.graph.edges().len(),
        query.graph.filters().len(),
        query.order_by.is_some()
    );
    // Round-trip check, for fun.
    println!("canonical SQL: {}\n", render_sql(&catalog, &query));

    let optimizer = Optimizer::new(&catalog);
    for alg in [
        Algorithm::Dp,
        Algorithm::Idp { k: 7 },
        Algorithm::Sdp(SdpConfig::paper()),
        Algorithm::Goo,
    ] {
        match optimizer.optimize(&query, alg) {
            Ok(plan) => {
                println!(
                    "-- {} — cost {:.0}, {} plans costed --",
                    alg.label(),
                    plan.cost,
                    plan.stats.plans_costed
                );
                println!("{}", explain(&plan.root));
            }
            Err(e) => println!("-- {} — {e} --\n", alg.label()),
        }
    }
}
