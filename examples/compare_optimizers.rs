//! Head-to-head comparison of DP, IDP(7), IDP(4), SDP and GOO over a
//! batch of Star-Chain-15 queries — a miniature of the paper's
//! Table 1.1 / Figure 1.2.
//!
//! ```text
//! cargo run --release --example compare_optimizers [instances]
//! ```

use sdp::metrics::geometric_mean_ratio;
use sdp::prelude::*;

fn main() {
    let instances: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);

    let catalog = Catalog::paper();
    let generator = QueryGenerator::new(&catalog, Topology::star_chain(15), 0x5d9_2007);
    let optimizer = Optimizer::new(&catalog);

    let algorithms = [
        Algorithm::Dp,
        Algorithm::Idp { k: 7 },
        Algorithm::Idp { k: 4 },
        Algorithm::Sdp(SdpConfig::paper()),
        Algorithm::Goo,
        Algorithm::ii(),
        Algorithm::sa(),
    ];

    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
    let mut costed: Vec<u64> = vec![0; algorithms.len()];
    let mut elapsed: Vec<f64> = vec![0.0; algorithms.len()];

    for k in 0..instances {
        let query = generator.instance(k);
        let dp_cost = optimizer.optimize(&query, Algorithm::Dp).unwrap().cost;
        for (i, &alg) in algorithms.iter().enumerate() {
            let plan = optimizer.optimize(&query, alg).unwrap();
            ratios[i].push((plan.cost / dp_cost).max(1.0));
            costed[i] += plan.stats.plans_costed;
            elapsed[i] += plan.stats.elapsed.as_secs_f64();
        }
    }

    println!("Star-Chain-15, {instances} instances — plan quality vs effort (paper Fig. 1.2):\n");
    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>14} {:>12}",
        "Tech", "rho", "worst", "ideal%", "plans costed", "time (ms)"
    );
    for (i, alg) in algorithms.iter().enumerate() {
        let rho = geometric_mean_ratio(&ratios[i]);
        let worst = ratios[i].iter().cloned().fold(1.0, f64::max);
        let ideal =
            100.0 * ratios[i].iter().filter(|&&r| r <= 1.01).count() as f64 / instances as f64;
        println!(
            "{:<8} {:>8.3} {:>8.2} {:>9.0}% {:>14} {:>12.2}",
            alg.label(),
            rho,
            worst,
            ideal,
            costed[i] / instances,
            1000.0 * elapsed[i] / instances as f64
        );
    }
    println!(
        "\nReading: SDP should sit at rho ≈ 1 with an order of magnitude fewer plans\n\
         costed than DP — the paper's \"knee of the tradeoff\"."
    );
}
