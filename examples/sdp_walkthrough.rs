//! A guided walk through SDP's machinery on the paper's Figure 2.1
//! example graph: hub identification, PruneGroup/FreeGroup splitting,
//! and level-by-level survivor counts (the paper's Figure 2.2).
//!
//! ```text
//! cargo run --release --example sdp_walkthrough
//! ```

use sdp::core::dp::{run_levels, LevelPruner};
use sdp::core::sdp::SdpPruner;
use sdp::core::{Budget, EnumContext};
use sdp::prelude::*;
use sdp::query::hubs;

fn main() {
    let catalog = Catalog::paper();

    // Figure 2.1: nine relations; node 0 star-joins 1..=4, a chain
    // runs 4–5–6, and node 6 star-joins 7 and 8. Hubs: 0 and 6.
    let bindings: Vec<RelId> = {
        let mut ids: Vec<RelId> = catalog.relations().iter().map(|r| r.id).collect();
        ids.truncate(9);
        ids
    };
    let pairs = [
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (4, 5),
        (5, 6),
        (6, 7),
        (6, 8),
    ];
    let edges: Vec<JoinEdge> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| {
            JoinEdge::new(ColRef::new(a, ColId(i as u16)), ColRef::new(b, ColId(0)))
        })
        .collect();
    let query = Query::new(JoinGraph::new(bindings, edges));

    // --- Hub identification (Figure 2.1) --------------------------------
    let roots = hubs::root_hubs(&query.graph);
    println!("root hubs (degree ≥ 3): {roots:?}  — the paper's relations 1 and 7\n");
    let composite = RelSet::from_indices([0, 1]);
    println!(
        "composite {{0,1}} joins {} external relations → composite hub: {}\n",
        query.graph.degree(composite),
        hubs::is_composite_hub(&query.graph, composite)
    );

    // --- SDP iterations (Figure 2.2) ------------------------------------
    // Run the level DP manually with the SDP pruner and report, per
    // level, how many JCRs were enumerated and how many survived.
    let model = CostModel::with_defaults(&catalog);
    let mut ctx = EnumContext::new(&query, &model, Budget::unlimited());
    for i in 0..9 {
        ctx.ensure_base_group(i);
    }
    let atoms: Vec<RelSet> = (0..9).map(RelSet::single).collect();

    struct Reporting {
        inner: SdpPruner,
    }
    impl LevelPruner for Reporting {
        fn prune(&mut self, ctx: &EnumContext<'_>, level: usize, sets: &[RelSet]) -> Vec<RelSet> {
            let victims = self.inner.prune(ctx, level, sets);
            println!(
                "level {level}: {:>4} JCRs enumerated, {:>4} pruned, {:>4} survive",
                sets.len(),
                victims.len(),
                sets.len() - victims.len()
            );
            victims
        }
    }
    let mut pruner = Reporting {
        inner: SdpPruner::new(&ctx, SdpConfig::paper()),
    };
    run_levels(&mut ctx, &atoms, 9, Some(&mut pruner)).unwrap();
    let root = ctx.finalize(query.graph.all_nodes()).unwrap();
    println!(
        "\nfinal plan cost {:.0} after costing {} plans ({} JCRs pruned):\n",
        root.cost,
        ctx.stats().plans_costed,
        ctx.stats().jcrs_pruned
    );
    println!("{}", explain(&root));

    // Compare against exhaustive DP on the same query.
    let dp = Optimizer::new(&catalog)
        .optimize(&query, Algorithm::Dp)
        .unwrap();
    println!(
        "exhaustive DP: cost {:.0} with {} plans costed → SDP ratio {:.4}",
        dp.cost,
        dp.stats.plans_costed,
        root.cost / dp.cost
    );
}
